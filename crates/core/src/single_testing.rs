//! Single-testing of complete and (minimal) partial answers (Theorem 3.1).
//!
//! All functions in this module evaluate over an already-chased instance
//! (typically the query-directed chase `ch^q_O(D)` of
//! [`omq_chase::query_directed_chase`]); combined with the linear-time
//! construction of that instance this yields the linear-time single-testing
//! results of the paper:
//!
//! * complete answers for weakly acyclic OMQs — ground the query with the
//!   candidate and run Yannakakis' algorithm;
//! * minimal partial answers (single wildcard) for acyclic OMQs — test
//!   partial-answerhood, then test that no wildcard position can be improved
//!   to a database constant;
//! * minimal partial answers with multi-wildcards for acyclic ELI OMQs — as
//!   above, additionally testing that no two wildcard groups can be merged.

use crate::error::CoreError;
use crate::Result;
use omq_cq::{Assignment, ConjunctiveQuery, HomSearch, VarId};
use omq_data::{Database, MultiTuple, MultiValue, PartialTuple, PartialValue, Value};
use rustc_hash::FxHashMap;
#[cfg(test)]
use rustc_hash::FxHashSet;

/// Checks that a candidate respects repeated answer variables (`x_i = x_j`
/// implies equal candidate values) and returns the induced assignment of the
/// *constant* positions.
fn coherent_constants<T: Copy + Eq>(
    query: &ConjunctiveQuery,
    values: &[T],
) -> Option<FxHashMap<VarId, T>> {
    let mut assignment: FxHashMap<VarId, T> = FxHashMap::default();
    for (&var, &value) in query.answer_vars().iter().zip(values) {
        match assignment.get(&var) {
            Some(&existing) if existing != value => return None,
            Some(_) => {}
            None => {
                assignment.insert(var, value);
            }
        }
    }
    Some(assignment)
}

fn check_arity(query: &ConjunctiveQuery, len: usize) -> Result<()> {
    if len != query.arity() {
        return Err(CoreError::ArityMismatch {
            expected: query.arity(),
            actual: len,
        });
    }
    Ok(())
}

/// Single-tests a complete candidate answer of `query` over the chased
/// instance `d0`.
pub fn test_complete(query: &ConjunctiveQuery, d0: &Database, candidate: &[Value]) -> Result<bool> {
    check_arity(query, candidate.len())?;
    if candidate.iter().any(|v| v.is_null()) {
        return Ok(false);
    }
    let Some(assignment) = coherent_constants(query, candidate) else {
        return Ok(false);
    };
    // Ground the query and decide the Boolean query (Yannakakis when acyclic,
    // backtracking otherwise).
    let names: Vec<String> = candidate
        .iter()
        .map(|v| match v {
            Value::Const(c) => d0.const_name(*c).to_owned(),
            Value::Null(_) => unreachable!("checked above"),
        })
        .collect();
    let _ = assignment;
    crate::yannakakis::single_test_cq(query, d0, &names)
}

/// Tests whether `candidate` is a (not necessarily minimal) partial answer of
/// `query` over `d0`: some homomorphism maps the constant positions to their
/// constants (wildcard positions are unconstrained).
pub fn test_partial(
    query: &ConjunctiveQuery,
    d0: &Database,
    candidate: &PartialTuple,
) -> Result<bool> {
    check_arity(query, candidate.len())?;
    let values: Vec<Option<Value>> = candidate
        .0
        .iter()
        .map(|p| match p {
            PartialValue::Const(c) => Some(Value::Const(*c)),
            PartialValue::Star => None,
        })
        .collect();
    // Coherence over *all* positions: a repeated variable with a constant at
    // one position and a wildcard at another is satisfiable only if the
    // wildcard can take that constant — which contradicts neither; but two
    // different constants are incoherent.
    let mut fixed: Assignment = Assignment::default();
    for (&var, value) in query.answer_vars().iter().zip(&values) {
        if let Some(v) = value {
            match fixed.get(&var) {
                Some(&existing) if existing != *v => return Ok(false),
                Some(_) => {}
                None => {
                    fixed.insert(var, *v);
                }
            }
        }
    }
    Ok(HomSearch::new(query, d0).exists(&fixed))
}

/// Single-tests a *minimal* partial answer with a single wildcard
/// (Theorem 3.1(2)).
pub fn test_minimal_partial(
    query: &ConjunctiveQuery,
    d0: &Database,
    candidate: &PartialTuple,
) -> Result<bool> {
    check_arity(query, candidate.len())?;
    if coherent_constants(query, &candidate.0).is_none() {
        return Ok(false);
    }
    if !test_partial(query, d0, candidate)? {
        return Ok(false);
    }
    // Minimality: no wildcard position can be improved to a database
    // constant while the rest stays fixed.
    let mut fixed: Assignment = Assignment::default();
    let mut starred_vars: Vec<VarId> = Vec::new();
    for (&var, value) in query.answer_vars().iter().zip(&candidate.0) {
        match value {
            PartialValue::Const(c) => {
                fixed.insert(var, Value::Const(*c));
            }
            PartialValue::Star => {
                if !starred_vars.contains(&var) {
                    starred_vars.push(var);
                }
            }
        }
    }
    let search = HomSearch::new(query, d0);
    for &y in &starred_vars {
        let mut improvable = false;
        search.for_each(&fixed, |hom| {
            if hom[&y].is_const() {
                improvable = true;
                false
            } else {
                true
            }
        });
        if improvable {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Groups the answer positions of a multi-wildcard candidate by wildcard, and
/// returns the identified query `q̂` together with the representative variable
/// of each wildcard group and the fixed constant positions.
fn identified_query(
    query: &ConjunctiveQuery,
    candidate: &MultiTuple,
) -> Option<(ConjunctiveQuery, FxHashMap<u32, VarId>, Assignment)> {
    // Coherence: repeated answer variables need equal candidate values.
    coherent_constants(query, &candidate.0)?;
    let mut groups: FxHashMap<u32, Vec<VarId>> = FxHashMap::default();
    let mut fixed_by_var: FxHashMap<VarId, Value> = FxHashMap::default();
    for (&var, value) in query.answer_vars().iter().zip(&candidate.0) {
        match value {
            MultiValue::Wild(w) => {
                let group = groups.entry(*w).or_default();
                if !group.contains(&var) {
                    group.push(var);
                }
            }
            MultiValue::Const(c) => {
                fixed_by_var.insert(var, Value::Const(*c));
            }
        }
    }
    // A variable cannot be both fixed and wildcarded coherently.
    for group in groups.values() {
        for v in group {
            if fixed_by_var.contains_key(v) {
                return None;
            }
        }
    }
    let group_list: Vec<Vec<VarId>> = groups.values().cloned().collect();
    let identified = query.identify_vars(&group_list);
    let representatives: FxHashMap<u32, VarId> =
        groups.iter().map(|(w, members)| (*w, members[0])).collect();
    let fixed: Assignment = fixed_by_var.into_iter().collect();
    Some((identified, representatives, fixed))
}

/// Tests whether `candidate` is a (not necessarily minimal) partial answer
/// with multi-wildcards over `d0`: some homomorphism maps constant positions
/// to their constants and maps positions carrying the same wildcard to the
/// same value.
pub fn test_partial_multi(
    query: &ConjunctiveQuery,
    d0: &Database,
    candidate: &MultiTuple,
) -> Result<bool> {
    check_arity(query, candidate.len())?;
    candidate.validate().map_err(CoreError::Data)?;
    let Some((identified, _representatives, fixed)) = identified_query(query, candidate) else {
        return Ok(false);
    };
    Ok(HomSearch::new(&identified, d0).exists(&fixed))
}

/// Single-tests a *minimal* partial answer with multi-wildcards
/// (Theorem 3.1(3)).
pub fn test_minimal_partial_multi(
    query: &ConjunctiveQuery,
    d0: &Database,
    candidate: &MultiTuple,
) -> Result<bool> {
    check_arity(query, candidate.len())?;
    candidate.validate().map_err(CoreError::Data)?;
    let Some((identified, representatives, fixed)) = identified_query(query, candidate) else {
        return Ok(false);
    };
    let search = HomSearch::new(&identified, d0);
    if !search.exists(&fixed) {
        return Ok(false);
    }
    let wildcards: Vec<u32> = {
        let mut w: Vec<u32> = representatives.keys().copied().collect();
        w.sort_unstable();
        w
    };
    // (a) A wildcard group can be realised by a database constant: the
    //     candidate is improvable by replacing that group with the constant.
    for &w in &wildcards {
        let y = representatives[&w];
        let mut improvable = false;
        search.for_each(&fixed, |hom| {
            if hom[&y].is_const() {
                improvable = true;
                false
            } else {
                true
            }
        });
        if improvable {
            return Ok(false);
        }
    }
    // (b) Two distinct wildcard groups can be mapped to a common value: the
    //     candidate is improvable by merging them.
    for i in 0..wildcards.len() {
        for j in (i + 1)..wildcards.len() {
            let yi = representatives[&wildcards[i]];
            let yj = representatives[&wildcards[j]];
            let mut mergeable = false;
            search.for_each(&fixed, |hom| {
                if hom[&yi] == hom[&yj] {
                    mergeable = true;
                    false
                } else {
                    true
                }
            });
            if mergeable {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Convenience: converts a tuple of constant names to values of `db`.
pub fn resolve_constants(db: &Database, names: &[&str]) -> Result<Vec<Value>> {
    names
        .iter()
        .map(|n| {
            db.const_id(n)
                .map(Value::Const)
                .ok_or_else(|| CoreError::UnknownConstant((*n).to_owned()))
        })
        .collect()
}

/// Brute-force reference implementations used by the tests below and by the
/// property tests at the workspace root.
#[cfg(test)]
mod oracle {
    use super::*;
    use crate::baseline;

    pub fn minimal_partial(query: &ConjunctiveQuery, d0: &Database) -> FxHashSet<PartialTuple> {
        baseline::cq_minimal_partial(query, d0)
            .into_iter()
            .collect()
    }

    pub fn minimal_partial_multi(query: &ConjunctiveQuery, d0: &Database) -> FxHashSet<MultiTuple> {
        baseline::cq_minimal_partial_multi(query, d0)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{query_directed_chase, Ontology, OntologyMediatedQuery, QchaseConfig};
    use omq_data::Schema;

    fn office() -> (OntologyMediatedQuery, Database) {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        let db = Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap();
        (omq, db)
    }

    fn chased() -> (OntologyMediatedQuery, Database) {
        let (omq, db) = office();
        let q = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        (omq, q.database)
    }

    #[test]
    fn complete_answer_testing() {
        let (omq, d0) = chased();
        let yes = resolve_constants(&d0, &["mary", "room1", "main1"]).unwrap();
        let no = resolve_constants(&d0, &["john", "room4", "main1"]).unwrap();
        assert!(test_complete(omq.query(), &d0, &yes).unwrap());
        assert!(!test_complete(omq.query(), &d0, &no).unwrap());
        assert!(matches!(
            test_complete(omq.query(), &d0, &yes[..2]),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn partial_answer_testing_running_example() {
        let (omq, d0) = chased();
        let mary = d0.const_id("mary").unwrap();
        let room1 = d0.const_id("room1").unwrap();
        let main1 = d0.const_id("main1").unwrap();
        let john = d0.const_id("john").unwrap();
        let room4 = d0.const_id("room4").unwrap();
        let mike = d0.const_id("mike").unwrap();
        use PartialValue::{Const, Star};

        // (mary, room1, main1) is a minimal partial answer (it is complete).
        let complete = PartialTuple(vec![Const(mary), Const(room1), Const(main1)]);
        assert!(test_minimal_partial(omq.query(), &d0, &complete).unwrap());
        // (mary, room1, *) is a partial answer but not minimal.
        let improvable = PartialTuple(vec![Const(mary), Const(room1), Star]);
        assert!(test_partial(omq.query(), &d0, &improvable).unwrap());
        assert!(!test_minimal_partial(omq.query(), &d0, &improvable).unwrap());
        // (john, room4, *) is minimal.
        let john_t = PartialTuple(vec![Const(john), Const(room4), Star]);
        assert!(test_minimal_partial(omq.query(), &d0, &john_t).unwrap());
        // (mike, *, *) is minimal.
        let mike_t = PartialTuple(vec![Const(mike), Star, Star]);
        assert!(test_minimal_partial(omq.query(), &d0, &mike_t).unwrap());
        // (mike, room1, *) is not even a partial answer.
        let wrong = PartialTuple(vec![Const(mike), Const(room1), Star]);
        assert!(!test_partial(omq.query(), &d0, &wrong).unwrap());
        // (*, *, *) is a partial answer but not minimal.
        let all_star = PartialTuple(vec![Star, Star, Star]);
        assert!(test_partial(omq.query(), &d0, &all_star).unwrap());
        assert!(!test_minimal_partial(omq.query(), &d0, &all_star).unwrap());
    }

    #[test]
    fn minimal_partial_testing_agrees_with_oracle() {
        let (omq, d0) = chased();
        let oracle = super::oracle::minimal_partial(omq.query(), &d0);
        // Every oracle answer passes the test.
        for answer in &oracle {
            assert!(
                test_minimal_partial(omq.query(), &d0, answer).unwrap(),
                "oracle answer rejected: {answer}"
            );
        }
        // A few candidates outside the oracle fail the test.
        let mary = d0.const_id("mary").unwrap();
        use PartialValue::{Const, Star};
        for candidate in [
            PartialTuple(vec![Const(mary), Star, Star]),
            PartialTuple(vec![Star, Star, Star]),
        ] {
            assert_eq!(
                test_minimal_partial(omq.query(), &d0, &candidate).unwrap(),
                oracle.contains(&candidate)
            );
        }
    }

    #[test]
    fn multi_wildcard_testing_example_2_2() {
        // Example 2.2 with the OfficeMate extension: Q''(x1,x2,x3,x4) asks for
        // two people with offices in the same building.
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)\n\
             OfficeMate(x, y) -> exists z. HasOffice(x, z), HasOffice(y, z)",
        )
        .unwrap();
        let query = ConjunctiveQuery::parse(
            "q(x1, x2, x3, x4) :- HasOffice(x1, x3), HasOffice(x2, x4), InBuilding(x3, w), InBuilding(x4, w)",
        )
        .unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s.add_relation("OfficeMate", 2).unwrap();
        let db = Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("InBuilding", ["room1", "main1"])
            .fact("OfficeMate", ["mary", "mike"])
            .build()
            .unwrap();
        let chased = query_directed_chase(&db, &omq, &QchaseConfig::default()).unwrap();
        let d0 = chased.database;
        let mary = d0.const_id("mary").unwrap();
        let mike = d0.const_id("mike").unwrap();
        use MultiValue::{Const, Wild};
        // (mary, mike, *1, *1): they share an (anonymous) office, hence the
        // same building — and the shared office cannot be improved to a named
        // room.
        let shared = MultiTuple(vec![Const(mary), Const(mike), Wild(1), Wild(1)]);
        assert!(test_partial_multi(omq.query(), &d0, &shared).unwrap());
        assert!(test_minimal_partial_multi(omq.query(), &d0, &shared).unwrap());
        // (mary, mike, *1, *2) is a partial answer but not minimal (the two
        // wildcards can be merged).
        let split = MultiTuple(vec![Const(mary), Const(mike), Wild(1), Wild(2)]);
        assert!(test_partial_multi(omq.query(), &d0, &split).unwrap());
        assert!(!test_minimal_partial_multi(omq.query(), &d0, &split).unwrap());
    }

    #[test]
    fn multi_wildcard_oracle_agreement() {
        let (omq, d0) = chased();
        let oracle = super::oracle::minimal_partial_multi(omq.query(), &d0);
        for answer in &oracle {
            assert!(
                test_minimal_partial_multi(omq.query(), &d0, answer).unwrap(),
                "oracle answer rejected: {answer}"
            );
        }
        // (mike, *1, *1) claims office = building, which no model is forced to
        // satisfy — hence not a partial answer at all.
        let mike = d0.const_id("mike").unwrap();
        use MultiValue::{Const, Wild};
        let bogus = MultiTuple(vec![Const(mike), Wild(1), Wild(1)]);
        assert!(!test_partial_multi(omq.query(), &d0, &bogus).unwrap());
        assert!(!test_minimal_partial_multi(omq.query(), &d0, &bogus).unwrap());
        // (mike, *1, *2) is the genuine minimal partial answer.
        let genuine = MultiTuple(vec![Const(mike), Wild(1), Wild(2)]);
        assert!(oracle.contains(&genuine));
        assert!(test_minimal_partial_multi(omq.query(), &d0, &genuine).unwrap());
    }

    #[test]
    fn unknown_constant_resolution() {
        let (_, d0) = chased();
        assert!(matches!(
            resolve_constants(&d0, &["nobody"]),
            Err(CoreError::UnknownConstant(_))
        ));
    }
}
