//! The shared preprocessing of the constant-delay engines: from an acyclic,
//! free-connex acyclic query `q₀` and a (possibly chased) database `D₀`,
//! construct a *full*, acyclic, self-join-free query `q₁` over reduced
//! extensions `D₁` satisfying the conditions (i)–(iv) of Section 5 of the
//! paper:
//!
//! * (i) `q₁` has no quantified variables and has a join tree `T₁`;
//! * (ii) every tuple of `D₁` stems from a fact of `D₀`;
//! * (iii) `q₀(D₀) = q₁(D₁)` (as sets of tuples, including labelled nulls),
//!   hence the minimal partial answers coincide as well;
//! * (iv) the *progress condition*: every tuple of a node has a matching tuple
//!   in each of its children, so a pre-order traversal never gets stuck.
//!
//! Construction: root the join tree `T⁺` of `q⁺ = q₀ ∧ R₀(x̄)` at the virtual
//! guard atom `R₀`, reduce every subtree bottom-up by semijoins, and project
//! the children of the guard onto their answer variables.  Every answer
//! variable occurring in a subtree also occurs in the subtree's top node (by
//! the join-tree connectivity condition), so no answer information is lost,
//! and the semijoins fold the satisfiability of the quantified part of each
//! subtree into its top node — including the distinction between constants
//! and labelled nulls that the partial-answer machinery needs.

use crate::error::CoreError;
use crate::extension::{Extension, Tuple};
use crate::Result;
use omq_cq::acyclicity::{self, guard_node_id};
use omq_cq::hypergraph::Hypergraph;
use omq_cq::{ConjunctiveQuery, VarId};
use omq_data::{Database, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// One node of the preprocessed structure (an atom of `q₁`).
#[derive(Debug, Clone)]
pub struct NodeData {
    /// The original `q₀` atom (child of the guard in `T⁺`) this node stems
    /// from.
    pub atom_index: usize,
    /// The node's variables (answer variables of `q₀`, in a fixed order).
    pub vars: Vec<VarId>,
    /// The reduced extension over [`NodeData::vars`].
    pub extension: Extension,
    /// Parent node in `T₁` (`None` for the root).
    pub parent: Option<usize>,
    /// Children in `T₁`.
    pub children: Vec<usize>,
    /// The predecessor variables: variables shared with the parent (empty for
    /// the root).
    pub pred_vars: Vec<VarId>,
    /// Index from the projection onto [`NodeData::pred_vars`] to the matching
    /// tuple indices of [`NodeData::extension`].
    pub index: FxHashMap<Tuple, Vec<usize>>,
}

/// The preprocessed structure shared by the constant-delay enumerators and
/// testers.
#[derive(Debug, Clone)]
pub struct FreeConnexStructure {
    /// The original query `q₀`.
    pub query: ConjunctiveQuery,
    /// The distinct answer variables, in first-occurrence order.
    pub distinct_answer_vars: Vec<VarId>,
    /// The answer tuple `x̄` (possibly with repeated variables).
    pub answer_positions: Vec<VarId>,
    /// The `q₁` nodes.
    pub nodes: Vec<NodeData>,
    /// Node indices in pre-order (roots of `T₁` first).
    pub preorder: Vec<usize>,
    /// `true` iff the answer set is empty (detected during preprocessing).
    pub empty: bool,
    /// For Boolean queries: whether the query holds (`None` for non-Boolean
    /// queries).
    pub boolean_satisfiable: Option<bool>,
}

impl FreeConnexStructure {
    /// Builds the structure.  `complete_only` drops tuples that assign a
    /// labelled null to an answer variable (the `P_db` relativisation used for
    /// complete answers); the partial-answer engines pass `false`.
    ///
    /// Returns an error if the query is not both acyclic and free-connex
    /// acyclic.
    pub fn build(
        query: &ConjunctiveQuery,
        db: &Database,
        complete_only: bool,
    ) -> Result<FreeConnexStructure> {
        query.validate()?;
        let report = acyclicity::AcyclicityReport::classify(query);
        if !report.acyclic || !report.free_connex_acyclic {
            return Err(CoreError::NotEnumerationTractable(query.to_string()));
        }

        let distinct_answer_vars = query.distinct_answer_vars();
        let answer_positions = query.answer_vars().to_vec();

        let mut structure = FreeConnexStructure {
            query: query.clone(),
            distinct_answer_vars: distinct_answer_vars.clone(),
            answer_positions,
            nodes: Vec::new(),
            preorder: Vec::new(),
            empty: false,
            boolean_satisfiable: None,
        };

        if query.is_boolean() {
            let holds = crate::yannakakis::boolean_holds_acyclic(query, db)?;
            structure.boolean_satisfiable = Some(holds);
            structure.empty = !holds;
            return Ok(structure);
        }
        if query.atoms().is_empty() {
            // Non-Boolean query with no atoms cannot have bound answer
            // variables; `validate` already rejected this.
            structure.empty = true;
            return Ok(structure);
        }

        // ---- Extensions of the original atoms. ----
        let answer_set: FxHashSet<VarId> = distinct_answer_vars.iter().copied().collect();
        let drop_nulls: FxHashSet<VarId> = if complete_only {
            answer_set.clone()
        } else {
            FxHashSet::default()
        };
        let mut extensions: Vec<Extension> = query
            .atoms()
            .iter()
            .map(|a| Extension::of_atom(a, db, &drop_nulls))
            .collect();
        if extensions.iter().any(Extension::is_empty) {
            structure.empty = true;
            return Ok(structure);
        }

        // ---- Join tree of q⁺ rooted at the guard; bottom-up reduction. ----
        let guard = guard_node_id(query);
        let tree_plus = acyclicity::join_tree_plus(query)
            .ok_or_else(|| CoreError::NotFreeConnex(query.to_string()))?;
        let rooted = tree_plus.rooted_at(guard);
        for &node in &rooted.bottom_up() {
            if node == guard {
                continue;
            }
            for &child in rooted.children_of(node) {
                let child_ext = extensions[child].clone();
                extensions[node].semijoin(&child_ext);
            }
            if extensions[node].is_empty() {
                structure.empty = true;
                return Ok(structure);
            }
        }

        // ---- q₁: children of the guard projected onto answer variables. ----
        struct ProtoNode {
            atom_index: usize,
            vars: Vec<VarId>,
            extension: Extension,
        }
        let mut protos: Vec<ProtoNode> = Vec::new();
        for &child in rooted.children_of(guard) {
            let vars: Vec<VarId> = extensions[child]
                .vars
                .iter()
                .copied()
                .filter(|v| answer_set.contains(v))
                .collect();
            if vars.is_empty() {
                // Purely quantified subtree: it acts as a Boolean filter.  Its
                // extension is non-empty (checked above), so it can be
                // dropped.
                continue;
            }
            let projected = extensions[child].project(&vars);
            protos.push(ProtoNode {
                atom_index: child,
                vars,
                extension: projected,
            });
        }
        // Every answer variable must be covered (it occurs in some atom and
        // therefore in some child of the guard).
        let covered: FxHashSet<VarId> = protos.iter().flat_map(|p| p.vars.clone()).collect();
        if !distinct_answer_vars.iter().all(|v| covered.contains(v)) {
            return Err(CoreError::Internal(
                "answer variable not covered by q1 nodes".to_owned(),
            ));
        }

        // ---- Join tree T₁ of q₁. ----
        let mut hypergraph = Hypergraph::new();
        for (i, p) in protos.iter().enumerate() {
            hypergraph.add_edge(i, p.vars.iter().copied());
        }
        let t1 = hypergraph
            .gyo()
            .ok_or_else(|| CoreError::Internal("q1 hypergraph unexpectedly cyclic".to_owned()))?;
        // Root at the node with the largest variable set (any root is valid).
        let root = (0..protos.len())
            .max_by_key(|&i| protos[i].vars.len())
            .expect("q1 has at least one node");
        let rooted1 = t1.rooted_at(root);

        // ---- Bottom-up semijoin reduction of q₁ (progress condition). ----
        let mut q1_exts: Vec<Extension> = protos.iter().map(|p| p.extension.clone()).collect();
        for &node in &rooted1.bottom_up() {
            for &child in rooted1.children_of(node) {
                let child_ext = q1_exts[child].clone();
                q1_exts[node].semijoin(&child_ext);
            }
            if q1_exts[node].is_empty() {
                structure.empty = true;
                return Ok(structure);
            }
        }

        // ---- Assemble nodes with parent/children/pred-vars and indexes. ----
        let mut nodes: Vec<NodeData> = Vec::with_capacity(protos.len());
        for (i, p) in protos.iter().enumerate() {
            let parent = rooted1.parent_of(i);
            let pred_vars: Vec<VarId> = match parent {
                Some(parent_idx) => p
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| protos[parent_idx].vars.contains(v))
                    .collect(),
                None => Vec::new(),
            };
            let index = q1_exts[i].index_on(&pred_vars);
            nodes.push(NodeData {
                atom_index: p.atom_index,
                vars: p.vars.clone(),
                extension: q1_exts[i].clone(),
                parent,
                children: rooted1.children_of(i).to_vec(),
                pred_vars,
                index,
            });
        }

        structure.nodes = nodes;
        structure.preorder = rooted1.preorder.clone();
        Ok(structure)
    }

    /// Expands an assignment of the distinct answer variables to the full
    /// answer tuple (repeated answer variables repeat their value).
    pub fn expand_answer(&self, assignment: &FxHashMap<VarId, Value>) -> Vec<Value> {
        self.answer_positions
            .iter()
            .map(|v| assignment[v])
            .collect()
    }

    /// The number of `q₁` nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the structure describes a Boolean query.
    pub fn is_boolean(&self) -> bool {
        self.boolean_satisfiable.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("T", 2).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["a", "c"])
            .fact("S", ["b", "x"])
            .fact("S", ["c", "y"])
            .fact("T", ["x", "t1"])
            .build()
            .unwrap()
    }

    #[test]
    fn full_path_query_structure() {
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        assert_eq!(s.node_count(), 2);
        // Progress condition: every root tuple has a matching child tuple.
        let root = s.preorder[0];
        let root_node = &s.nodes[root];
        for child in &root_node.children {
            let child_node = &s.nodes[*child];
            for t in &root_node.extension.tuples {
                let key: Vec<Value> = child_node
                    .pred_vars
                    .iter()
                    .map(|v| t[root_node.extension.position_of(*v).unwrap()])
                    .collect();
                assert!(child_node.index.contains_key(&key));
            }
        }
    }

    #[test]
    fn projection_with_quantified_middle_is_rejected() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            FreeConnexStructure::build(&q, &db(), true),
            Err(CoreError::NotEnumerationTractable(_))
        ));
    }

    #[test]
    fn semijoin_reduction_prunes_dangling_tuples() {
        // R(a,c) has no S(c, _) continuation matching T, so with q over
        // R, S, T only the chain a-b-x-t1 survives.
        let q = ConjunctiveQuery::parse("q(x, y, z, w) :- R(x, y), S(y, z), T(z, w)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        // The root extension is fully reduced: every root tuple extends to a
        // complete answer, and only the single chain a-b-x-t1 survives.
        let root = s.preorder[0];
        assert_eq!(s.nodes[root].extension.len(), 1);
    }

    #[test]
    fn boolean_query_shortcut() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(s.is_boolean());
        assert_eq!(s.boolean_satisfiable, Some(true));
        let q2 = ConjunctiveQuery::parse("q() :- T(x, y), T(y, z)").unwrap();
        let s2 = FreeConnexStructure::build(&q2, &db(), true).unwrap();
        assert_eq!(s2.boolean_satisfiable, Some(false));
        assert!(s2.empty);
    }

    #[test]
    fn empty_extension_short_circuits() {
        let q = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(s.empty);
    }

    #[test]
    fn quantified_only_component_acts_as_filter() {
        // The S-T part shares nothing with the answer part.
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y), T(u, v)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        // Only the R node carries answer variables.
        assert_eq!(s.node_count(), 1);

        // With an unsatisfiable filter the structure is empty.
        let q2 = ConjunctiveQuery::parse("q(x, y) :- R(x, y), T(u, u)").unwrap();
        let s2 = FreeConnexStructure::build(&q2, &db(), true).unwrap();
        assert!(s2.empty);
    }

    #[test]
    fn nulls_are_kept_unless_complete_only() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut database = Database::new(s);
        database.add_named_fact("R", &["a", "b"]).unwrap();
        let a = Value::Const(database.const_id("a").unwrap());
        let null = database.fresh_null();
        let rel = database.schema().relation_id("R").unwrap();
        database
            .add_fact(omq_data::Fact::new(rel, vec![a, Value::Null(null)]))
            .unwrap();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let partial = FreeConnexStructure::build(&q, &database, false).unwrap();
        assert_eq!(partial.nodes[0].extension.len(), 2);
        let complete = FreeConnexStructure::build(&q, &database, true).unwrap();
        assert_eq!(complete.nodes[0].extension.len(), 1);
    }

    #[test]
    fn answer_expansion_handles_repeats() {
        let q = ConjunctiveQuery::parse("q(x, x, y) :- R(x, y)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        let x = q.var_id("x").unwrap();
        let y = q.var_id("y").unwrap();
        let a = Value::Const(db().const_id("a").unwrap());
        let b = Value::Const(db().const_id("b").unwrap());
        let mut assignment = FxHashMap::default();
        assignment.insert(x, a);
        assignment.insert(y, b);
        assert_eq!(s.expand_answer(&assignment), vec![a, a, b]);
    }
}
