//! The shared preprocessing of the constant-delay engines: from an acyclic,
//! free-connex acyclic query `q₀` and a (possibly chased) database `D₀`,
//! construct a *full*, acyclic, self-join-free query `q₁` over reduced
//! extensions `D₁` satisfying the conditions (i)–(iv) of Section 5 of the
//! paper:
//!
//! * (i) `q₁` has no quantified variables and has a join tree `T₁`;
//! * (ii) every tuple of `D₁` stems from a fact of `D₀`;
//! * (iii) `q₀(D₀) = q₁(D₁)` (as sets of tuples, including labelled nulls),
//!   hence the minimal partial answers coincide as well;
//! * (iv) the *progress condition*: every tuple of a node has a matching tuple
//!   in each of its children, so a pre-order traversal never gets stuck.
//!
//! The construction is split into two phases, mirroring the
//! compile-once/execute-many architecture of the crate:
//!
//! 1. [`PlanSkeleton::compile`] derives every artefact that depends only on
//!    the *query*: the acyclicity classification, the join tree `T⁺` of
//!    `q⁺ = q₀ ∧ R₀(x̄)` rooted at the virtual guard atom `R₀`, the reduced
//!    `q₁` node layout (variables, parent/children, predecessor variables,
//!    pre-order), and the answer-column sources.  A skeleton is compiled once
//!    per OMQ and reused for any number of databases.
//! 2. [`FreeConnexStructure::materialize`] fills a skeleton with data: it
//!    scans the atom extensions from the columnar indexes, reduces every
//!    subtree bottom-up by semijoins, projects the children of the guard onto
//!    their answer variables, and finally lays out, for every non-root node,
//!    a dense CSR *parent join* mapping each parent tuple to its matching
//!    tuples — the structure the constant-delay enumerator walks without any
//!    hashing.

use crate::error::CoreError;
use crate::extension::{Extension, Tuple};
use crate::Result;
use omq_cq::acyclicity::{self, guard_node_id, AcyclicityReport};
use omq_cq::hypergraph::Hypergraph;
use omq_cq::{ConjunctiveQuery, VarId};
use omq_data::{Database, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// One `q₁` node of a compiled [`PlanSkeleton`]: the data-independent layout
/// of the corresponding [`NodeData`].
#[derive(Debug, Clone)]
pub struct SkeletonNode {
    /// The original `q₀` atom (child of the guard in `T⁺`) this node stems
    /// from.
    pub atom_index: usize,
    /// The node's variables (answer variables of `q₀`, in a fixed order).
    pub vars: Vec<VarId>,
    /// Parent node in `T₁` (`None` for the root).
    pub parent: Option<usize>,
    /// Children in `T₁`.
    pub children: Vec<usize>,
    /// Variables shared with the parent (empty for the root).
    pub pred_vars: Vec<VarId>,
}

/// The query-side half of the preprocessing: everything derivable from the
/// query alone, compiled once and reusable across databases.
#[derive(Debug, Clone)]
pub struct PlanSkeleton {
    /// The original query `q₀`.
    pub query: ConjunctiveQuery,
    /// Structural classification of the query.
    pub report: AcyclicityReport,
    /// The distinct answer variables, in first-occurrence order.
    pub distinct_answer_vars: Vec<VarId>,
    /// The answer tuple `x̄` (possibly with repeated variables).
    pub answer_positions: Vec<VarId>,
    /// `true` iff the query is Boolean (decided per database).
    pub boolean: bool,
    /// Bottom-up semijoin schedule over `T⁺` (guard excluded): for every
    /// atom, its children in the rooted `T⁺`.
    plus_schedule: Vec<(usize, Vec<usize>)>,
    /// The `q₁` node layout.
    pub nodes: Vec<SkeletonNode>,
    /// Node indices in pre-order (root of `T₁` first).
    pub preorder: Vec<usize>,
    /// For every answer position: the `(node, column)` of `T₁` supplying its
    /// value (the first pre-order node containing the variable).
    pub answer_sources: Vec<(usize, usize)>,
}

impl PlanSkeleton {
    /// Compiles the query-side artefacts.  Returns an error if the query is
    /// not both acyclic and free-connex acyclic.
    pub fn compile(query: &ConjunctiveQuery) -> Result<PlanSkeleton> {
        query.validate()?;
        let report = AcyclicityReport::classify(query);
        if !report.acyclic || !report.free_connex_acyclic {
            return Err(CoreError::NotEnumerationTractable(query.to_string()));
        }

        let distinct_answer_vars = query.distinct_answer_vars();
        let answer_positions = query.answer_vars().to_vec();
        let mut skeleton = PlanSkeleton {
            query: query.clone(),
            report,
            distinct_answer_vars: distinct_answer_vars.clone(),
            answer_positions,
            boolean: query.is_boolean(),
            plus_schedule: Vec::new(),
            nodes: Vec::new(),
            preorder: Vec::new(),
            answer_sources: Vec::new(),
        };
        if skeleton.boolean || query.atoms().is_empty() {
            return Ok(skeleton);
        }

        // ---- Join tree of q⁺ rooted at the guard; reduction schedule. ----
        let guard = guard_node_id(query);
        let tree_plus = acyclicity::join_tree_plus(query)
            .ok_or_else(|| CoreError::NotFreeConnex(query.to_string()))?;
        let rooted = tree_plus.rooted_at(guard);
        for &node in &rooted.bottom_up() {
            if node == guard {
                continue;
            }
            skeleton
                .plus_schedule
                .push((node, rooted.children_of(node).to_vec()));
        }

        // ---- q₁ layout: children of the guard, kept iff they carry answer
        //      variables (purely quantified subtrees act as Boolean filters
        //      and are dropped after the reduction checks them). ----
        let answer_set: FxHashSet<VarId> = distinct_answer_vars.iter().copied().collect();
        struct Proto {
            atom_index: usize,
            vars: Vec<VarId>,
        }
        let mut protos: Vec<Proto> = Vec::new();
        for &child in rooted.children_of(guard) {
            let vars: Vec<VarId> = query.atoms()[child]
                .variables()
                .into_iter()
                .filter(|v| answer_set.contains(v))
                .collect();
            if vars.is_empty() {
                continue;
            }
            protos.push(Proto {
                atom_index: child,
                vars,
            });
        }
        // Every answer variable must be covered (it occurs in some atom and
        // therefore in some child of the guard).
        let covered: FxHashSet<VarId> = protos.iter().flat_map(|p| p.vars.clone()).collect();
        if !distinct_answer_vars.iter().all(|v| covered.contains(v)) {
            return Err(CoreError::Internal(
                "answer variable not covered by q1 nodes".to_owned(),
            ));
        }

        // ---- Join tree T₁ of q₁. ----
        let mut hypergraph = Hypergraph::new();
        for (i, p) in protos.iter().enumerate() {
            hypergraph.add_edge(i, p.vars.iter().copied());
        }
        let t1 = hypergraph
            .gyo()
            .ok_or_else(|| CoreError::Internal("q1 hypergraph unexpectedly cyclic".to_owned()))?;
        // Root at the node with the largest variable set (any root is valid).
        let root = (0..protos.len())
            .max_by_key(|&i| protos[i].vars.len())
            .expect("q1 has at least one node");
        let rooted1 = t1.rooted_at(root);

        for (i, p) in protos.iter().enumerate() {
            let parent = rooted1.parent_of(i);
            let pred_vars: Vec<VarId> = match parent {
                Some(parent_idx) => p
                    .vars
                    .iter()
                    .copied()
                    .filter(|v| protos[parent_idx].vars.contains(v))
                    .collect(),
                None => Vec::new(),
            };
            skeleton.nodes.push(SkeletonNode {
                atom_index: p.atom_index,
                vars: p.vars.clone(),
                parent,
                children: rooted1.children_of(i).to_vec(),
                pred_vars,
            });
        }
        skeleton.preorder = rooted1.preorder.clone();

        // ---- Answer sources: first pre-order node containing each answer
        //      position's variable. ----
        for &var in &skeleton.answer_positions {
            let source = skeleton
                .preorder
                .iter()
                .find_map(|&n| {
                    skeleton.nodes[n]
                        .vars
                        .iter()
                        .position(|&v| v == var)
                        .map(|col| (n, col))
                })
                .ok_or_else(|| {
                    CoreError::Internal("answer variable without a source node".to_owned())
                })?;
            skeleton.answer_sources.push(source);
        }
        Ok(skeleton)
    }

    /// The number of `q₁` nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Dense CSR join from parent tuples to the matching own tuples: the tuples
/// of node `v` compatible with parent tuple `t` are
/// `tuples[offsets[t]..offsets[t + 1]]`.  The enumeration phase follows these
/// slices instead of hashing predecessor bindings.
#[derive(Debug, Clone, Default)]
pub struct JoinCsr {
    /// One entry per parent tuple, plus one.
    pub offsets: Vec<u32>,
    /// Own tuple indices grouped by parent tuple.
    pub tuples: Vec<u32>,
}

impl JoinCsr {
    /// The own-tuple indices matching parent tuple `parent_idx`.
    #[inline]
    pub fn matching(&self, parent_idx: usize) -> &[u32] {
        let lo = self.offsets[parent_idx] as usize;
        let hi = self.offsets[parent_idx + 1] as usize;
        &self.tuples[lo..hi]
    }
}

/// One node of the preprocessed structure (an atom of `q₁`).
#[derive(Debug, Clone)]
pub struct NodeData {
    /// The original `q₀` atom (child of the guard in `T⁺`) this node stems
    /// from.
    pub atom_index: usize,
    /// The node's variables (answer variables of `q₀`, in a fixed order).
    pub vars: Vec<VarId>,
    /// The reduced extension over [`NodeData::vars`].
    pub extension: Extension,
    /// Parent node in `T₁` (`None` for the root).
    pub parent: Option<usize>,
    /// Children in `T₁`.
    pub children: Vec<usize>,
    /// The predecessor variables: variables shared with the parent (empty for
    /// the root).
    pub pred_vars: Vec<VarId>,
    /// Index from the projection onto [`NodeData::pred_vars`] to the matching
    /// tuple indices of [`NodeData::extension`] (used at preprocessing time;
    /// the enumeration phase uses [`NodeData::parent_join`]).
    pub index: FxHashMap<Tuple, Vec<usize>>,
    /// Dense parent-tuple → own-tuples join (`None` for nodes with no
    /// predecessor variables, whose candidates are all tuples).
    pub parent_join: Option<JoinCsr>,
}

/// The preprocessed structure shared by the constant-delay enumerators and
/// testers.
#[derive(Debug, Clone)]
pub struct FreeConnexStructure {
    /// The original query `q₀`.
    pub query: ConjunctiveQuery,
    /// The distinct answer variables, in first-occurrence order.
    pub distinct_answer_vars: Vec<VarId>,
    /// The answer tuple `x̄` (possibly with repeated variables).
    pub answer_positions: Vec<VarId>,
    /// The `q₁` nodes.
    pub nodes: Vec<NodeData>,
    /// Node indices in pre-order (roots of `T₁` first).
    pub preorder: Vec<usize>,
    /// For every answer position: the `(node, column)` supplying its value.
    pub answer_sources: Vec<(usize, usize)>,
    /// `true` iff the answer set is empty (detected during preprocessing).
    pub empty: bool,
    /// For Boolean queries: whether the query holds (`None` for non-Boolean
    /// queries).
    pub boolean_satisfiable: Option<bool>,
}

impl FreeConnexStructure {
    /// Builds the structure, compiling a throwaway [`PlanSkeleton`] first.
    /// `complete_only` drops tuples that assign a labelled null to an answer
    /// variable (the `P_db` relativisation used for complete answers); the
    /// partial-answer engines pass `false`.
    ///
    /// Returns an error if the query is not both acyclic and free-connex
    /// acyclic.  Callers evaluating one query over many databases should
    /// compile the skeleton once and call
    /// [`FreeConnexStructure::materialize`].
    pub fn build(
        query: &ConjunctiveQuery,
        db: &Database,
        complete_only: bool,
    ) -> Result<FreeConnexStructure> {
        let skeleton = PlanSkeleton::compile(query)?;
        Self::materialize(&skeleton, db, complete_only)
    }

    /// Fills a compiled skeleton with the data of `db`.
    pub fn materialize(
        skeleton: &PlanSkeleton,
        db: &Database,
        complete_only: bool,
    ) -> Result<FreeConnexStructure> {
        let query = &skeleton.query;
        let mut structure = FreeConnexStructure {
            query: query.clone(),
            distinct_answer_vars: skeleton.distinct_answer_vars.clone(),
            answer_positions: skeleton.answer_positions.clone(),
            nodes: Vec::new(),
            preorder: Vec::new(),
            answer_sources: Vec::new(),
            empty: false,
            boolean_satisfiable: None,
        };

        if skeleton.boolean {
            let holds = crate::yannakakis::boolean_holds_acyclic(query, db)?;
            structure.boolean_satisfiable = Some(holds);
            structure.empty = !holds;
            return Ok(structure);
        }
        if query.atoms().is_empty() {
            // Non-Boolean query with no atoms cannot have bound answer
            // variables; `validate` already rejected this.
            structure.empty = true;
            return Ok(structure);
        }

        // ---- Extensions of the original atoms. ----
        let drop_nulls: FxHashSet<VarId> = if complete_only {
            skeleton.distinct_answer_vars.iter().copied().collect()
        } else {
            FxHashSet::default()
        };
        let mut extensions: Vec<Extension> = query
            .atoms()
            .iter()
            .map(|a| Extension::of_atom(a, db, &drop_nulls))
            .collect();
        if extensions.iter().any(Extension::is_empty) {
            structure.empty = true;
            return Ok(structure);
        }

        // ---- Bottom-up reduction along T⁺ (precompiled schedule). ----
        for (node, children) in &skeleton.plus_schedule {
            for &child in children {
                let child_ext = extensions[child].clone();
                extensions[*node].semijoin(&child_ext);
            }
            if extensions[*node].is_empty() {
                structure.empty = true;
                return Ok(structure);
            }
        }

        // ---- q₁ extensions: project onto the skeleton's node variables. ----
        let mut q1_exts: Vec<Extension> = skeleton
            .nodes
            .iter()
            .map(|n| extensions[n.atom_index].project(&n.vars))
            .collect();

        // ---- Bottom-up semijoin reduction of q₁ (progress condition). ----
        for &node in skeleton.preorder.iter().rev() {
            for &child in &skeleton.nodes[node].children {
                let child_ext = q1_exts[child].clone();
                q1_exts[node].semijoin(&child_ext);
            }
            if q1_exts[node].is_empty() {
                structure.empty = true;
                return Ok(structure);
            }
        }

        // ---- Assemble nodes: hash index (preprocessing) + dense parent
        //      join CSR (enumeration). ----
        let mut nodes: Vec<NodeData> = Vec::with_capacity(skeleton.nodes.len());
        for (i, sk) in skeleton.nodes.iter().enumerate() {
            let index = q1_exts[i].index_on(&sk.pred_vars);
            nodes.push(NodeData {
                atom_index: sk.atom_index,
                vars: sk.vars.clone(),
                extension: q1_exts[i].clone(),
                parent: sk.parent,
                children: sk.children.clone(),
                pred_vars: sk.pred_vars.clone(),
                index,
                parent_join: None,
            });
        }
        // The CSR needs the parent's final extension, so fill it in a second
        // pass.
        for i in 0..nodes.len() {
            let Some(parent) = nodes[i].parent else {
                continue;
            };
            if nodes[i].pred_vars.is_empty() {
                continue; // all tuples match every parent tuple
            }
            let parent_positions: Vec<usize> = nodes[i]
                .pred_vars
                .iter()
                .map(|v| {
                    nodes[parent]
                        .extension
                        .position_of(*v)
                        .expect("pred var occurs in parent")
                })
                .collect();
            let parent_len = nodes[parent].extension.len();
            let mut offsets: Vec<u32> = Vec::with_capacity(parent_len + 1);
            let mut tuples: Vec<u32> = Vec::new();
            offsets.push(0);
            for t in 0..parent_len {
                let key: Tuple = parent_positions
                    .iter()
                    .map(|&p| nodes[parent].extension.value(t, p))
                    .collect();
                if let Some(matching) = nodes[i].index.get(&key) {
                    tuples.extend(matching.iter().map(|&m| m as u32));
                }
                offsets.push(tuples.len() as u32);
            }
            nodes[i].parent_join = Some(JoinCsr { offsets, tuples });
        }

        structure.nodes = nodes;
        structure.preorder = skeleton.preorder.clone();
        structure.answer_sources = skeleton.answer_sources.clone();
        Ok(structure)
    }

    /// Expands an assignment of the distinct answer variables to the full
    /// answer tuple (repeated answer variables repeat their value).
    pub fn expand_answer(&self, assignment: &FxHashMap<VarId, Value>) -> Vec<Value> {
        self.answer_positions
            .iter()
            .map(|v| assignment[v])
            .collect()
    }

    /// The number of `q₁` nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the structure describes a Boolean query.
    pub fn is_boolean(&self) -> bool {
        self.boolean_satisfiable.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_data::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("T", 2).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["a", "c"])
            .fact("S", ["b", "x"])
            .fact("S", ["c", "y"])
            .fact("T", ["x", "t1"])
            .build()
            .unwrap()
    }

    #[test]
    fn full_path_query_structure() {
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        assert_eq!(s.node_count(), 2);
        // Progress condition: every root tuple has a matching child tuple.
        let root = s.preorder[0];
        let root_node = &s.nodes[root];
        for child in &root_node.children {
            let child_node = &s.nodes[*child];
            for t in root_node.extension.rows() {
                let key: Vec<Value> = child_node
                    .pred_vars
                    .iter()
                    .map(|v| t[root_node.extension.position_of(*v).unwrap()])
                    .collect();
                assert!(child_node.index.contains_key(&key));
            }
            // The dense parent join agrees with the hash index.
            let join = child_node.parent_join.as_ref().expect("shared vars");
            for (t_idx, t) in root_node.extension.rows().enumerate() {
                let key: Vec<Value> = child_node
                    .pred_vars
                    .iter()
                    .map(|v| t[root_node.extension.position_of(*v).unwrap()])
                    .collect();
                let via_hash = &child_node.index[&key];
                let via_csr: Vec<usize> =
                    join.matching(t_idx).iter().map(|&x| x as usize).collect();
                assert_eq!(via_hash, &via_csr);
            }
        }
    }

    #[test]
    fn skeleton_is_reusable_across_databases() {
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let skeleton = PlanSkeleton::compile(&q).unwrap();
        let s1 = FreeConnexStructure::materialize(&skeleton, &db(), true).unwrap();
        let mut other = db();
        other.add_named_fact("R", &["z1", "b"]).unwrap();
        let s2 = FreeConnexStructure::materialize(&skeleton, &other, true).unwrap();
        assert_eq!(s1.node_count(), s2.node_count());
        assert!(!crate::enumerate::collect_answers(&s2).is_empty());
        assert_eq!(
            crate::enumerate::collect_answers(&s1),
            crate::enumerate::collect_answers(
                &FreeConnexStructure::build(&q, &db(), true).unwrap()
            )
        );
    }

    #[test]
    fn projection_with_quantified_middle_is_rejected() {
        let q = ConjunctiveQuery::parse("q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert!(matches!(
            FreeConnexStructure::build(&q, &db(), true),
            Err(CoreError::NotEnumerationTractable(_))
        ));
        assert!(matches!(
            PlanSkeleton::compile(&q),
            Err(CoreError::NotEnumerationTractable(_))
        ));
    }

    #[test]
    fn semijoin_reduction_prunes_dangling_tuples() {
        // R(a,c) has no S(c, _) continuation matching T, so with q over
        // R, S, T only the chain a-b-x-t1 survives.
        let q = ConjunctiveQuery::parse("q(x, y, z, w) :- R(x, y), S(y, z), T(z, w)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        // The root extension is fully reduced: every root tuple extends to a
        // complete answer, and only the single chain a-b-x-t1 survives.
        let root = s.preorder[0];
        assert_eq!(s.nodes[root].extension.len(), 1);
    }

    #[test]
    fn boolean_query_shortcut() {
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(s.is_boolean());
        assert_eq!(s.boolean_satisfiable, Some(true));
        let q2 = ConjunctiveQuery::parse("q() :- T(x, y), T(y, z)").unwrap();
        let s2 = FreeConnexStructure::build(&q2, &db(), true).unwrap();
        assert_eq!(s2.boolean_satisfiable, Some(false));
        assert!(s2.empty);
    }

    #[test]
    fn empty_extension_short_circuits() {
        let q = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(s.empty);
    }

    #[test]
    fn quantified_only_component_acts_as_filter() {
        // The S-T part shares nothing with the answer part.
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y), T(u, v)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        assert!(!s.empty);
        // Only the R node carries answer variables.
        assert_eq!(s.node_count(), 1);

        // With an unsatisfiable filter the structure is empty.
        let q2 = ConjunctiveQuery::parse("q(x, y) :- R(x, y), T(u, u)").unwrap();
        let s2 = FreeConnexStructure::build(&q2, &db(), true).unwrap();
        assert!(s2.empty);
    }

    #[test]
    fn nulls_are_kept_unless_complete_only() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut database = Database::new(s);
        database.add_named_fact("R", &["a", "b"]).unwrap();
        let a = Value::Const(database.const_id("a").unwrap());
        let null = database.fresh_null();
        let rel = database.schema().relation_id("R").unwrap();
        database
            .add_fact(omq_data::Fact::new(rel, vec![a, Value::Null(null)]))
            .unwrap();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let partial = FreeConnexStructure::build(&q, &database, false).unwrap();
        assert_eq!(partial.nodes[0].extension.len(), 2);
        let complete = FreeConnexStructure::build(&q, &database, true).unwrap();
        assert_eq!(complete.nodes[0].extension.len(), 1);
    }

    #[test]
    fn answer_expansion_handles_repeats() {
        let q = ConjunctiveQuery::parse("q(x, x, y) :- R(x, y)").unwrap();
        let s = FreeConnexStructure::build(&q, &db(), true).unwrap();
        let x = q.var_id("x").unwrap();
        let y = q.var_id("y").unwrap();
        let a = Value::Const(db().const_id("a").unwrap());
        let b = Value::Const(db().const_id("b").unwrap());
        let mut assignment = FxHashMap::default();
        assignment.insert(x, a);
        assignment.insert(y, b);
        assert_eq!(s.expand_answer(&assignment), vec![a, a, b]);
        // Repeated answer positions share their source node and column.
        assert_eq!(s.answer_sources[0], s.answer_sources[1]);
    }
}
