//! The top-level engine: ontology-mediated query evaluation end to end.
//!
//! [`OmqEngine::preprocess`] runs the linear-time preprocessing shared by all
//! evaluation modes — the query-directed chase `ch^q_O(D)` — and the engine
//! then exposes every mode studied in the paper:
//!
//! | mode                                   | paper result      | method |
//! |----------------------------------------|-------------------|--------|
//! | enumerate complete answers             | Theorem 4.1(1)    | [`OmqEngine::enumerate_complete`] |
//! | all-test complete answers              | Theorem 4.1(2)    | [`OmqEngine::all_tester`] |
//! | enumerate minimal partial answers      | Theorem 5.2       | [`OmqEngine::enumerate_minimal_partial`] |
//! | … with complete answers first          | Proposition 2.1   | [`OmqEngine::enumerate_minimal_partial_complete_first`] |
//! | enumerate minimal partial answers (multi-wildcard) | Theorem 6.1 | [`OmqEngine::enumerate_minimal_partial_multi`] |
//! | single-test complete / partial answers | Theorem 3.1       | [`OmqEngine::test_complete_names`] and friends |

use crate::all_testing::AllTester;
use crate::partial_enum::PartialEnumerator;
use crate::plan::{PreparedInstance, QueryPlan};
use crate::preprocess::FreeConnexStructure;
use crate::stream::AnswerStream;
use crate::Result;
use omq_chase::{OntologyMediatedQuery, QchaseConfig};
use omq_data::{Answer, ConstId, Database, MultiTuple, PartialTuple, Semantics, Value};
use std::ops::ControlFlow;

/// Configuration of [`OmqEngine::preprocess_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Configuration of the query-directed chase.
    pub qchase: QchaseConfig,
}

/// Statistics about the preprocessing phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreprocessStats {
    /// Facts in the input database.
    pub input_facts: usize,
    /// Facts in the query-directed chase.
    pub chased_facts: usize,
    /// Wall-clock microseconds spent computing the query-directed chase.
    pub chase_micros: u128,
    /// Number of grafted null trees.
    pub grafts: usize,
    /// Bag-memoisation hits during the chase.
    pub memo_hits: usize,
    /// Whether the guarded saturation reached a fixpoint.
    pub saturation_converged: bool,
    /// Number of Gaifman shards the execution ran over (1 for sequential).
    pub shards: usize,
    /// Shards spliced in unchanged from a predecessor instance by
    /// [`crate::PreparedInstance::refresh`] (0 for fresh executions).  Their
    /// chase output and columnar indexes were not recomputed.
    pub reused_shards: usize,
}

/// A fully preprocessed ontology-mediated query over a fixed database.
///
/// Since the plan/instance split, this is a thin facade that compiles a
/// [`QueryPlan`] and executes it over one database.  Workloads evaluating
/// one OMQ over many databases should compile the plan once with
/// [`QueryPlan::compile`] and call [`QueryPlan::execute`] per database
/// instead — the engine pays the plan compilation on every `preprocess`.
#[derive(Debug)]
pub struct OmqEngine {
    instance: PreparedInstance,
}

impl OmqEngine {
    /// Runs the linear-time preprocessing (query-directed chase) with default
    /// settings.
    ///
    /// Returns an error if the ontology is not guarded.
    pub fn preprocess(omq: &OntologyMediatedQuery, db: &Database) -> Result<Self> {
        Self::preprocess_with(omq, db, &EngineConfig::default())
    }

    /// Runs the linear-time preprocessing with an explicit configuration.
    pub fn preprocess_with(
        omq: &OntologyMediatedQuery,
        db: &Database,
        config: &EngineConfig,
    ) -> Result<Self> {
        let plan = QueryPlan::compile_with(omq, config)?;
        let instance = plan.execute(db)?;
        Ok(OmqEngine { instance })
    }

    /// Wraps an already-executed plan instance in the engine facade.
    pub fn from_instance(instance: PreparedInstance) -> Self {
        OmqEngine { instance }
    }

    /// The compiled plan behind this engine.
    pub fn plan(&self) -> &QueryPlan {
        self.instance.plan()
    }

    /// The executed instance behind this engine.
    pub fn instance(&self) -> &PreparedInstance {
        &self.instance
    }

    /// The OMQ this engine evaluates.
    pub fn omq(&self) -> &OntologyMediatedQuery {
        self.instance.omq()
    }

    /// The query-directed chase `ch^q_O(D)` the engine evaluates over.
    pub fn chased_database(&self) -> &Database {
        self.instance.chased_database()
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> &PreprocessStats {
        self.instance.stats()
    }

    // ------------------------------------------------------------------
    // The unified answer cursor.
    // ------------------------------------------------------------------

    /// Returns the lazy answer cursor for `semantics` — see
    /// [`PreparedInstance::answers`].  Each call rebuilds the per-shard
    /// enumeration structures (linear in the chase); after that,
    /// `take(k)` on the returned stream costs `O(k)`.
    pub fn answers(&self, semantics: Semantics) -> Result<AnswerStream> {
        self.instance.answers(semantics)
    }

    /// Streams the answers of `semantics` with `ControlFlow`-style early
    /// exit — see [`PreparedInstance::for_each_answer`].
    pub fn for_each_answer(
        &self,
        semantics: Semantics,
        f: impl FnMut(Answer) -> ControlFlow<()>,
    ) -> Result<usize> {
        self.instance.for_each_answer(semantics, f)
    }

    /// Single-tests an answer of any semantics — see
    /// [`PreparedInstance::test`].
    pub fn test(&self, answer: &Answer) -> Result<bool> {
        self.instance.test(answer)
    }

    // ------------------------------------------------------------------
    // Complete answers.
    // ------------------------------------------------------------------

    /// Builds the constant-delay enumeration structure for complete answers
    /// (Theorem 4.1(1)).  Requires the query to be acyclic and free-connex
    /// acyclic.
    pub fn complete_structure(&self) -> Result<FreeConnexStructure> {
        self.instance.complete_structure()
    }

    /// Enumerates all complete (certain) answers.
    #[deprecated(note = "use `answers(Semantics::Complete)`")]
    #[allow(deprecated)]
    pub fn enumerate_complete(&self) -> Result<Vec<Vec<ConstId>>> {
        self.instance.enumerate_complete()
    }

    /// Streams the complete answers to a callback (useful for measuring the
    /// per-answer delay).
    #[deprecated(note = "use `answers(Semantics::Complete)` or `for_each_answer`")]
    #[allow(deprecated)]
    pub fn stream_complete(&self, f: impl FnMut(&[Value])) -> Result<usize> {
        self.instance.stream_complete(f)
    }

    // ------------------------------------------------------------------
    // Minimal partial answers.
    // ------------------------------------------------------------------

    /// Builds the Algorithm 1 enumerator (linear-time preprocessing of
    /// Theorem 5.2).  The returned enumerator is consumed by a single
    /// enumeration run; build a new one to re-enumerate.
    pub fn partial_enumerator(&self) -> Result<PartialEnumerator> {
        self.instance.partial_enumerator()
    }

    /// Enumerates the minimal partial answers (single wildcard, Theorem 5.2).
    #[deprecated(note = "use `answers(Semantics::MinimalPartial)`")]
    #[allow(deprecated)]
    pub fn enumerate_minimal_partial(&self) -> Result<Vec<PartialTuple>> {
        self.instance.enumerate_minimal_partial()
    }

    /// Streams the minimal partial answers to a callback.
    #[deprecated(note = "use `answers(Semantics::MinimalPartial)` or `for_each_answer`")]
    #[allow(deprecated)]
    pub fn stream_minimal_partial(&self, f: impl FnMut(&PartialTuple)) -> Result<usize> {
        self.instance.stream_minimal_partial(f)
    }

    /// Enumerates the minimal partial answers with all complete answers first
    /// (Proposition 2.1).
    pub fn enumerate_minimal_partial_complete_first(&self) -> Result<Vec<PartialTuple>> {
        self.instance.enumerate_minimal_partial_complete_first()
    }

    /// Enumerates the minimal partial answers with multi-wildcards
    /// (Theorem 6.1).
    #[deprecated(note = "use `answers(Semantics::MinimalPartialMulti)`")]
    #[allow(deprecated)]
    pub fn enumerate_minimal_partial_multi(&self) -> Result<Vec<MultiTuple>> {
        self.instance.enumerate_minimal_partial_multi()
    }

    /// Streams the minimal partial answers with multi-wildcards to a callback.
    #[deprecated(note = "use `answers(Semantics::MinimalPartialMulti)` or `for_each_answer`")]
    #[allow(deprecated)]
    pub fn stream_minimal_partial_multi(&self, f: impl FnMut(&MultiTuple)) -> Result<usize> {
        self.instance.stream_minimal_partial_multi(f)
    }

    // ------------------------------------------------------------------
    // Testing.
    // ------------------------------------------------------------------

    /// Builds the all-tester for complete answers (Theorem 4.1(2)); requires
    /// the query to be free-connex acyclic (acyclicity is *not* required).
    pub fn all_tester(&self) -> Result<AllTester> {
        self.instance.all_tester()
    }

    /// Single-tests a complete answer given by constant names.
    pub fn test_complete_names(&self, names: &[&str]) -> Result<bool> {
        self.instance.test_complete_names(names)
    }

    /// Single-tests a minimal partial answer (single wildcard).
    #[deprecated(note = "use `test(&Answer::Partial(candidate))`")]
    #[allow(deprecated)]
    pub fn test_minimal_partial(&self, candidate: &PartialTuple) -> Result<bool> {
        self.instance.test_minimal_partial(candidate)
    }

    /// Single-tests a minimal partial answer with multi-wildcards.
    #[deprecated(note = "use `test(&Answer::Multi(candidate))`")]
    #[allow(deprecated)]
    pub fn test_minimal_partial_multi(&self, candidate: &MultiTuple) -> Result<bool> {
        self.instance.test_minimal_partial_multi(candidate)
    }

    // ------------------------------------------------------------------
    // Convenience / display.
    // ------------------------------------------------------------------

    /// Resolves constant names to identifiers of the chased database.
    pub fn resolve(&self, names: &[&str]) -> Result<Vec<ConstId>> {
        self.instance.resolve(names)
    }

    /// Builds a partial tuple from constant names and `*` wildcards.
    pub fn parse_partial(&self, spec: &[&str]) -> Result<PartialTuple> {
        self.instance.parse_partial(spec)
    }

    /// Renders any answer with constant names.
    pub fn format_answer(&self, answer: &Answer) -> String {
        self.instance.format_answer(answer)
    }

    /// Renders a complete answer with constant names.
    pub fn format_complete(&self, answer: &[ConstId]) -> String {
        self.instance.format_complete(answer)
    }

    /// Renders a partial answer with constant names.
    pub fn format_partial(&self, answer: &PartialTuple) -> String {
        self.instance.format_partial(answer)
    }

    /// Renders a multi-wildcard answer with constant names.
    pub fn format_multi(&self, answer: &MultiTuple) -> String {
        self.instance.format_multi(answer)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::CoreError;
    use omq_chase::Ontology;
    use omq_cq::ConjunctiveQuery;
    use omq_data::Schema;
    use rustc_hash::FxHashSet;

    fn office() -> (OntologyMediatedQuery, Database) {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        let db = Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap();
        (omq, db)
    }

    #[test]
    fn running_example_end_to_end() {
        let (omq, db) = office();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        assert!(engine.stats().chased_facts >= engine.stats().input_facts);

        // Complete answers: exactly (mary, room1, main1).
        let complete = engine.enumerate_complete().unwrap();
        assert_eq!(complete.len(), 1);
        assert_eq!(engine.format_complete(&complete[0]), "(mary,room1,main1)");

        // Minimal partial answers: the three tuples of Example 1.1.
        let partial = engine.enumerate_minimal_partial().unwrap();
        let rendered: FxHashSet<String> =
            partial.iter().map(|t| engine.format_partial(t)).collect();
        assert_eq!(
            rendered,
            ["(mary,room1,main1)", "(john,room4,*)", "(mike,*,*)"]
                .into_iter()
                .map(str::to_owned)
                .collect()
        );

        // Multi-wildcard versions (Example 2.2): same three shapes, with
        // distinct wildcards for mike.
        let multi = engine.enumerate_minimal_partial_multi().unwrap();
        let rendered: FxHashSet<String> = multi.iter().map(|t| engine.format_multi(t)).collect();
        assert_eq!(
            rendered,
            ["(mary,room1,main1)", "(john,room4,*1)", "(mike,*1,*2)"]
                .into_iter()
                .map(str::to_owned)
                .collect()
        );

        // Complete-first ordering starts with the complete answer.
        let ordered = engine.enumerate_minimal_partial_complete_first().unwrap();
        assert_eq!(ordered.len(), 3);
        assert!(ordered[0].is_complete());
    }

    #[test]
    fn testing_modes_agree_with_enumeration() {
        let (omq, db) = office();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        // Single-testing.
        assert!(engine
            .test_complete_names(&["mary", "room1", "main1"])
            .unwrap());
        assert!(!engine
            .test_complete_names(&["john", "room4", "main1"])
            .unwrap());
        assert!(!engine.test_complete_names(&["nobody", "x", "y"]).unwrap());
        // All-testing.
        let tester = engine.all_tester().unwrap();
        for answer in engine.enumerate_complete().unwrap() {
            let values: Vec<Value> = answer.iter().map(|&c| Value::Const(c)).collect();
            assert!(tester.test(&values).unwrap());
        }
        let wrong = engine.resolve(&["john", "room4", "main1"]).unwrap();
        let wrong: Vec<Value> = wrong.into_iter().map(Value::Const).collect();
        assert!(!tester.test(&wrong).unwrap());
        // Partial single-testing agrees with enumeration.
        for answer in engine.enumerate_minimal_partial().unwrap() {
            assert!(engine.test_minimal_partial(&answer).unwrap());
        }
        let not_minimal = engine.parse_partial(&["mary", "room1", "*"]).unwrap();
        assert!(!engine.test_minimal_partial(&not_minimal).unwrap());
        // Multi-wildcard single-testing agrees with enumeration.
        for answer in engine.enumerate_minimal_partial_multi().unwrap() {
            assert!(engine.test_minimal_partial_multi(&answer).unwrap());
        }
    }

    #[test]
    fn streaming_counts_match_collection() {
        let (omq, db) = office();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        let mut n = 0;
        engine.stream_minimal_partial(|_| n += 1).unwrap();
        assert_eq!(n, engine.enumerate_minimal_partial().unwrap().len());
        let mut m = 0;
        engine.stream_complete(|_| m += 1).unwrap();
        assert_eq!(m, engine.enumerate_complete().unwrap().len());
        let mut k = 0;
        engine.stream_minimal_partial_multi(|_| k += 1).unwrap();
        assert_eq!(k, engine.enumerate_minimal_partial_multi().unwrap().len());
    }

    #[test]
    fn unguarded_ontology_is_rejected() {
        let ontology = Ontology::parse("R(x, y), S(y, z) -> T(x, z)").unwrap();
        let query = ConjunctiveQuery::parse("q(x, z) :- T(x, z)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let db = Database::new(omq.data_schema().clone());
        assert!(matches!(
            OmqEngine::preprocess(&omq, &db),
            Err(CoreError::NotGuarded(_))
        ));
    }

    #[test]
    fn agrees_with_brute_force_baseline() {
        let (omq, db) = office();
        let engine = OmqEngine::preprocess(&omq, &db).unwrap();
        let brute = crate::baseline::BruteForce::new(&omq, &db, &omq_chase::ChaseConfig::default())
            .unwrap();
        // Complete answers coincide (compare by rendered names to be robust
        // against different constant interning).
        let fast: FxHashSet<String> = engine
            .enumerate_complete()
            .unwrap()
            .iter()
            .map(|a| engine.format_complete(a))
            .collect();
        let slow: FxHashSet<String> = brute
            .complete_answers()
            .iter()
            .map(|a| {
                let names: Vec<&str> = a
                    .iter()
                    .map(|v| match v {
                        Value::Const(c) => brute.chased.const_name(*c),
                        Value::Null(_) => unreachable!(),
                    })
                    .collect();
                format!("({})", names.join(","))
            })
            .collect();
        assert_eq!(fast, slow);
        // Minimal partial answers coincide.
        let fast: FxHashSet<String> = engine
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| engine.format_partial(t))
            .collect();
        let slow: FxHashSet<String> = brute
            .minimal_partial()
            .iter()
            .map(|t| t.display_with(|c| brute.chased.const_name(c).to_owned()))
            .collect();
        assert_eq!(fast, slow);
    }
}
