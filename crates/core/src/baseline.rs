//! Brute-force baselines and oracles.
//!
//! These compute OMQ answers by materialising a (bounded) chase and running a
//! backtracking homomorphism search — no constant-delay guarantees, no
//! linear-time preprocessing.  They serve two purposes:
//!
//! * as the *baseline* the benchmarks compare the constant-delay engines
//!   against (experiment E10);
//! * as *test oracles*: the property tests check that the optimised engines
//!   produce exactly the same answer sets.

use crate::Result;
use omq_chase::{chase, ChaseConfig, OntologyMediatedQuery};
use omq_cq::{homomorphism, ConjunctiveQuery};
use omq_data::{Database, MultiTuple, PartialTuple, Value};
use rustc_hash::FxHashSet;

/// All (deduplicated) answers of a CQ over an instance, including answers that
/// mention labelled nulls.
pub fn cq_answers(query: &ConjunctiveQuery, db: &Database) -> Vec<Vec<Value>> {
    homomorphism::evaluate(query, db)
}

/// The complete answers of a CQ over an instance: answers without nulls.
pub fn cq_complete_answers(query: &ConjunctiveQuery, db: &Database) -> Vec<Vec<Value>> {
    cq_answers(query, db)
        .into_iter()
        .filter(|t| t.iter().all(|v| v.is_const()))
        .collect()
}

/// The minimal partial answers `q(I)*_N` of a CQ over an instance.
pub fn cq_minimal_partial(query: &ConjunctiveQuery, db: &Database) -> Vec<PartialTuple> {
    let mut tuples: Vec<PartialTuple> = Vec::new();
    let mut seen: FxHashSet<PartialTuple> = FxHashSet::default();
    for answer in cq_answers(query, db) {
        let partial = PartialTuple::from_answer(&answer);
        if seen.insert(partial.clone()) {
            tuples.push(partial);
        }
    }
    PartialTuple::minimal(&tuples)
}

/// The minimal partial answers with multi-wildcards `q(I)^W_N` of a CQ over an
/// instance.
pub fn cq_minimal_partial_multi(query: &ConjunctiveQuery, db: &Database) -> Vec<MultiTuple> {
    let mut tuples: Vec<MultiTuple> = Vec::new();
    let mut seen: FxHashSet<MultiTuple> = FxHashSet::default();
    for answer in cq_answers(query, db) {
        let multi = MultiTuple::from_answer(&answer);
        if seen.insert(multi.clone()) {
            tuples.push(multi);
        }
    }
    MultiTuple::minimal(&tuples)
}

/// A brute-force OMQ evaluator: materialises the bounded chase once and
/// answers every evaluation mode by homomorphism search over it.
#[derive(Debug)]
pub struct BruteForce {
    query: ConjunctiveQuery,
    /// The chased instance.
    pub chased: Database,
    /// `true` iff the chase was truncated by its depth bound (answers may then
    /// be under-approximated for pathological recursive ontologies).
    pub truncated: bool,
}

impl BruteForce {
    /// Chases `db` with the OMQ's ontology using `config`.
    pub fn new(omq: &OntologyMediatedQuery, db: &Database, config: &ChaseConfig) -> Result<Self> {
        let result = chase(db, omq.ontology(), config)?;
        Ok(BruteForce {
            query: omq.query().clone(),
            chased: result.database,
            truncated: result.truncated,
        })
    }

    /// Complete (certain) answers.
    pub fn complete_answers(&self) -> Vec<Vec<Value>> {
        cq_complete_answers(&self.query, &self.chased)
    }

    /// Minimal partial answers (single wildcard).
    pub fn minimal_partial(&self) -> Vec<PartialTuple> {
        cq_minimal_partial(&self.query, &self.chased)
    }

    /// Minimal partial answers with multi-wildcards.
    pub fn minimal_partial_multi(&self) -> Vec<MultiTuple> {
        cq_minimal_partial_multi(&self.query, &self.chased)
    }

    /// Single-tests a complete candidate.
    pub fn test_complete(&self, candidate: &[Value]) -> bool {
        self.complete_answers().contains(&candidate.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::Ontology;
    use omq_data::{PartialValue, Schema};

    fn office() -> (OntologyMediatedQuery, Database) {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        let db = Database::builder(s)
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap();
        (omq, db)
    }

    #[test]
    fn running_example_answers() {
        let (omq, db) = office();
        let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
        // Complete answers: only (mary, room1, main1).
        let complete = brute.complete_answers();
        assert_eq!(complete.len(), 1);
        assert!(brute.test_complete(&complete[0]));

        // Minimal partial answers: (mary,room1,main1), (john,room4,*), (mike,*,*).
        let partial = brute.minimal_partial();
        assert_eq!(partial.len(), 3);
        let star_counts: Vec<usize> = {
            let mut v: Vec<usize> = partial.iter().map(PartialTuple::star_count).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(star_counts, vec![0, 1, 2]);

        // Multi-wildcard versions have the same cardinality here (Example 2.2).
        let multi = brute.minimal_partial_multi();
        assert_eq!(multi.len(), 3);
    }

    #[test]
    fn partial_answers_over_plain_database() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        let mut db = Database::new(s);
        db.add_named_fact("R", &["a", "b"]).unwrap();
        let null = db.fresh_null();
        let rel = db.schema().relation_id("R").unwrap();
        let a = Value::Const(db.const_id("a").unwrap());
        db.add_fact(omq_data::Fact::new(rel, vec![a, Value::Null(null)]))
            .unwrap();
        let q = ConjunctiveQuery::parse("q(x, y) :- R(x, y)").unwrap();
        let partial = cq_minimal_partial(&q, &db);
        // (a,b) is minimal; (a,*) is dominated by it.
        assert_eq!(partial.len(), 1);
        assert_eq!(
            partial[0].0[1],
            PartialValue::Const(db.const_id("b").unwrap())
        );
        let complete = cq_complete_answers(&q, &db);
        assert_eq!(complete.len(), 1);
    }

    #[test]
    fn empty_ontology_baseline_equals_cq_semantics() {
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x) :- Researcher(x)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query.clone()).unwrap();
        let (_, db) = office();
        let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).unwrap();
        assert_eq!(
            brute.complete_answers().len(),
            homomorphism::evaluate(&query, &db).len()
        );
        assert!(!brute.truncated);
    }
}
