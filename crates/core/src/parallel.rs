//! Shared-nothing parallel execution of a [`QueryPlan`] over the Gaifman
//! components of the database.
//!
//! # Why sharding is sound
//!
//! The paper's locality property (Proposition 3.3 and Lemma A.2) makes the
//! query-directed chase of a *guarded* ontology act independently per
//! connected component of the database's Gaifman graph: every TGD trigger is
//! guarded, so all frontier values of a trigger co-occur in one fact and
//! therefore lie in a single component, and the nulls a trigger generates
//! attach below that component.  Components never merge during the chase,
//! hence
//!
//! ```text
//! ch^q_O(D)  =  ⊎_i ch^q_O(D_i)        (D_i the Gaifman components of D)
//! ```
//!
//! and chasing the components independently — on separate threads, with the
//! plan's bag-type memo shared behind a read-mostly lock — produces exactly
//! the sequential chase, partitioned.
//!
//! For a *connected* query (atoms connected via shared variables or
//! constants), every homomorphic image of the body is connected and thus
//! falls inside one component, so the answer set over `D` is the union of
//! the per-shard answer sets.  [`QueryPlan::execute_parallel`] checks the
//! connectivity gate and falls back to the sequential path when it fails.
//!
//! # Cross-shard minimality of wildcard answers
//!
//! Minimal partial answers need one extra merge step.  The preference order
//! `⪯` requires a dominating tuple to *agree on every constant position* of
//! the dominated tuple, so for an answer carrying at least one constant, all
//! of its dominators live in the same shard (constants are partitioned by
//! component) and shard-local minimality is already global.  The only
//! tuples whose minimality is a cross-shard property are the **wildcard-only
//! tuples** — `(*, …, *)` for the single-wildcard semantics and the
//! canonical wildcard-identification patterns (one per set partition of the
//! positions, a number depending only on the query arity) for
//! multi-wildcards.  The crate-private `WildcardMerge` filter enumerates
//! those patterns up front,
//! parks them as they stream by, marks each pattern dominated as soon as
//! *any* emitted answer strictly dominates it, and flushes the surviving
//! ones after the shard streams are exhausted.  The bookkeeping per emitted
//! answer is bounded by the (query-constant) number of patterns, so the
//! chained enumeration keeps its constant delay.

use crate::plan::{PreparedInstance, QueryPlan};
use crate::{PreprocessStats, Result};
use omq_data::{multi_wildcard_ball, Database, MultiTuple, PartialTuple, PartialValue};
use std::time::Instant;

impl QueryPlan {
    /// Executes the plan over `db` with up to `threads` worker threads,
    /// sharding the database by Gaifman connected component.
    ///
    /// The shards are chased concurrently (scoped threads, no extra
    /// dependencies) against the plan's shared bag-type memo, and the
    /// resulting [`PreparedInstance`] keeps one chased database per shard;
    /// its answer cursor (`PreparedInstance::answers`) chains the shard
    /// streams and re-filters the wildcard-only answers, so every evaluation
    /// mode agrees with the sequential [`QueryPlan::execute`] (see the module docs for the
    /// soundness argument and `tests/parallel_equivalence.rs` for the
    /// property tests).
    ///
    /// Falls back to the sequential path when `threads <= 1`, when the
    /// query's body is not connected (answers could combine values from
    /// several components), or when the database has a single component.
    ///
    /// Like [`QueryPlan::execute`], accepts `&Database` or a store
    /// [`omq_data::Snapshot`].
    pub fn execute_parallel(
        &self,
        db: impl AsRef<Database>,
        threads: usize,
    ) -> Result<PreparedInstance> {
        let db = db.as_ref();
        if threads <= 1 || !self.omq().query().is_connected() {
            return self.execute(db);
        }
        // `try_shard_into` hands back `None` without copying a single fact
        // when there is nothing to split — the common single-component
        // request must not pay for a database clone it would throw away.
        let Some(shards) = db.try_shard_into(threads) else {
            return self.execute(db);
        };
        let start = Instant::now();
        let chase = self.chase_plan();
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|shard| scope.spawn(move || chase.chase(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("chase worker panicked"))
                .collect()
        });
        let mut stats = PreprocessStats {
            input_facts: db.len(),
            saturation_converged: true,
            shards: results.len(),
            ..PreprocessStats::default()
        };
        let mut shard_dbs = Vec::with_capacity(results.len());
        for result in results {
            let chased = result?;
            stats.chased_facts += chased.database.len();
            stats.grafts += chased.grafts;
            stats.memo_hits += chased.memo_hits;
            stats.saturation_converged &= chased.saturation_converged;
            shard_dbs.push(chased.database);
        }
        stats.chase_micros = start.elapsed().as_micros();
        Ok(self.instance_from_shards(shard_dbs, stats))
    }
}

/// A tuple kind that can flow through the cross-shard wildcard merge.
pub(crate) trait MergeTuple: Clone + PartialEq {
    /// `true` iff the tuple carries no constant (its minimality is a
    /// cross-shard property).
    fn constant_free(&self) -> bool;
    /// The strict preference order `≺`: `self` carries strictly more
    /// information than `other`.
    fn dominates(&self, other: &Self) -> bool;
}

impl MergeTuple for PartialTuple {
    fn constant_free(&self) -> bool {
        self.0.iter().all(|v| v.is_star())
    }
    fn dominates(&self, other: &Self) -> bool {
        self.preferred_lt(other)
    }
}

impl MergeTuple for MultiTuple {
    fn constant_free(&self) -> bool {
        self.0.iter().all(|v| v.is_wild())
    }
    fn dominates(&self, other: &Self) -> bool {
        self.preferred_lt(other)
    }
}

/// One wildcard-only candidate pattern tracked by the merge.
#[derive(Debug)]
struct Pattern<T> {
    tuple: T,
    /// Some shard emitted this exact tuple as a shard-minimal answer.
    seen: bool,
    /// Some answer (from any shard) strictly dominates the tuple, so it is
    /// not globally minimal.
    dominated: bool,
}

/// The cross-shard minimality filter for chained shard enumerations.
///
/// Feed every per-shard minimal answer through [`WildcardMerge::offer`]:
/// answers with constants are emitted immediately (their shard-local
/// minimality is global — see the module docs), wildcard-only answers are
/// parked against the precomputed pattern list.  [`WildcardMerge::flush`]
/// then emits the wildcard-only tuples that were produced by some shard and
/// dominated by no answer.
#[derive(Debug)]
pub(crate) struct WildcardMerge<T> {
    patterns: Vec<Pattern<T>>,
}

impl WildcardMerge<PartialTuple> {
    /// Merge state for the single-wildcard semantics: the only wildcard-only
    /// tuple of arity `n` is `(*, …, *)`.
    pub(crate) fn partial(arity: usize) -> Self {
        WildcardMerge {
            patterns: vec![Pattern {
                tuple: PartialTuple(vec![PartialValue::Star; arity]),
                seen: false,
                dominated: false,
            }],
        }
    }
}

impl WildcardMerge<MultiTuple> {
    /// Merge state for the multi-wildcard semantics: one pattern per way of
    /// identifying wildcards across the positions (the multi-wildcard ball
    /// of `(*, …, *)`, one canonical tuple per set partition).
    pub(crate) fn multi(arity: usize) -> Self {
        let all_star = PartialTuple(vec![PartialValue::Star; arity]);
        WildcardMerge {
            patterns: multi_wildcard_ball(&all_star)
                .into_iter()
                .map(|tuple| Pattern {
                    tuple,
                    seen: false,
                    dominated: false,
                })
                .collect(),
        }
    }
}

impl<T: MergeTuple> WildcardMerge<T> {
    /// Offers one per-shard minimal answer to the merge; constant-bearing
    /// answers are forwarded to `emit` unchanged.
    pub(crate) fn offer(&mut self, t: T, emit: &mut impl FnMut(T)) {
        for pattern in &mut self.patterns {
            if !pattern.dominated && t.dominates(&pattern.tuple) {
                pattern.dominated = true;
            }
        }
        if t.constant_free() {
            self.patterns
                .iter_mut()
                .find(|p| p.tuple == t)
                .expect("the pattern list covers every wildcard-only tuple of the arity")
                .seen = true;
        } else {
            emit(t);
        }
    }

    /// Emits the globally minimal wildcard-only answers.  Call once, after
    /// every shard stream has been drained.
    pub(crate) fn flush(self, emit: &mut impl FnMut(T)) {
        for pattern in self.patterns {
            if pattern.seen && !pattern.dominated {
                emit(pattern.tuple);
            }
        }
    }

    /// Non-materialising twin of [`WildcardMerge::offer`] for the aggregate
    /// fast paths: updates the domination/seen state from a *borrowed* tuple
    /// and reports whether the tuple counts immediately (`true` for
    /// constant-bearing answers, whose shard-local minimality is global) or
    /// was parked against the wildcard patterns (`false`).  Parked tuples are
    /// accounted for by [`WildcardMerge::survivors`] at the end.
    pub(crate) fn observe(&mut self, t: &T) -> bool {
        for pattern in &mut self.patterns {
            if !pattern.dominated && t.dominates(&pattern.tuple) {
                pattern.dominated = true;
            }
        }
        if t.constant_free() {
            self.patterns
                .iter_mut()
                .find(|p| p.tuple == *t)
                .expect("the pattern list covers every wildcard-only tuple of the arity")
                .seen = true;
            false
        } else {
            true
        }
    }

    /// Folds another merge of the **same arity and semantics** into this one.
    /// Both sides were constructed by the same `partial`/`multi` constructor,
    /// so their pattern lists are identical and positionally aligned; a
    /// pattern is seen (dominated) globally iff it is seen (dominated) in
    /// either side.  This is the associative combine of the embarrassingly
    /// parallel per-shard counting reduce.
    pub(crate) fn absorb(&mut self, other: Self) {
        debug_assert_eq!(self.patterns.len(), other.patterns.len());
        for (mine, theirs) in self.patterns.iter_mut().zip(other.patterns) {
            debug_assert!(mine.tuple == theirs.tuple);
            mine.seen |= theirs.seen;
            mine.dominated |= theirs.dominated;
        }
    }

    /// Number of globally minimal wildcard-only answers currently parked:
    /// what [`WildcardMerge::flush`] would emit.  Call once, after every
    /// shard's answers have been observed.
    pub(crate) fn survivors(&self) -> u64 {
        self.patterns
            .iter()
            .filter(|p| p.seen && !p.dominated)
            .count() as u64
    }
}

// `QueryPlan` and `PreparedInstance` are the artefacts shared across the
// worker threads; keep them `Send + Sync` by construction (the facade crate
// re-asserts this for the whole public surface).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryPlan>();
    assert_send_sync::<PreparedInstance>();
};

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use omq_chase::{Ontology, OntologyMediatedQuery};
    use omq_cq::ConjunctiveQuery;
    use omq_data::{ConstId, MultiValue, Schema};
    use std::collections::BTreeSet;

    fn office_omq() -> OntologyMediatedQuery {
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)")
                .unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s
    }

    /// Three components: mary's complete chain, john's office, lone mike.
    fn component_db() -> Database {
        Database::builder(schema())
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    fn partial_set(instance: &PreparedInstance) -> BTreeSet<String> {
        instance
            .enumerate_minimal_partial()
            .unwrap()
            .iter()
            .map(|t| instance.format_partial(t))
            .collect()
    }

    #[test]
    fn parallel_execution_matches_sequential_on_running_example() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let db = component_db();
        let sequential = plan.execute(&db).unwrap();
        for threads in [2, 3, 8] {
            let parallel = plan.execute_parallel(&db, threads).unwrap();
            assert!(parallel.shard_count() > 1);
            assert_eq!(parallel.shard_count(), parallel.stats().shards);
            assert_eq!(
                parallel.stats().chased_facts,
                sequential.stats().chased_facts
            );
            // Complete answers.
            let seq: BTreeSet<String> = sequential
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| sequential.format_complete(a))
                .collect();
            let par: BTreeSet<String> = parallel
                .enumerate_complete()
                .unwrap()
                .iter()
                .map(|a| parallel.format_complete(a))
                .collect();
            assert_eq!(seq, par);
            // Minimal partial answers.
            assert_eq!(partial_set(&sequential), partial_set(&parallel));
            // Multi-wildcard answers.
            let seq: BTreeSet<String> = sequential
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| sequential.format_multi(t))
                .collect();
            let par: BTreeSet<String> = parallel
                .enumerate_minimal_partial_multi()
                .unwrap()
                .iter()
                .map(|t| parallel.format_multi(t))
                .collect();
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn all_star_answers_are_filtered_across_shards() {
        // Query answering only the building; researchers without any office
        // produce the all-star answer `(*)` in their own component.  With
        // another component holding a real building, `(*)` is dominated
        // cross-shard and must not survive the merge.
        let ontology = Ontology::parse(
            "Researcher(x) -> exists y. HasOffice(x, y)\n\
             HasOffice(x, y) -> Office(y)\n\
             Office(x) -> exists y. InBuilding(x, y)",
        )
        .unwrap();
        let query =
            ConjunctiveQuery::parse("q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let plan = QueryPlan::compile(&omq).unwrap();
        let db = Database::builder(schema())
            .fact("Researcher", ["ada"]) // component 1: chase-only office
            .fact("Researcher", ["bob"]) // component 2: listed building
            .fact("HasOffice", ["bob", "lab"])
            .fact("InBuilding", ["lab", "west"])
            .build()
            .unwrap();
        let sequential = plan.execute(&db).unwrap();
        let parallel = plan.execute_parallel(&db, 2).unwrap();
        assert_eq!(parallel.shard_count(), 2);
        assert_eq!(partial_set(&sequential), partial_set(&parallel));
        // And the merged set is exactly {(west)} — the all-star was dropped.
        assert_eq!(
            partial_set(&parallel),
            BTreeSet::from(["(west)".to_owned()])
        );
        // With no building anywhere, the all-star is the unique minimal
        // answer and must survive (deduplicated across shards).
        let lonely = Database::builder(schema())
            .fact("Researcher", ["ada"])
            .fact("Researcher", ["bob"])
            .build()
            .unwrap();
        let sequential = plan.execute(&lonely).unwrap();
        let parallel = plan.execute_parallel(&lonely, 2).unwrap();
        assert_eq!(parallel.shard_count(), 2);
        assert_eq!(partial_set(&sequential), partial_set(&parallel));
        assert_eq!(partial_set(&parallel), BTreeSet::from(["(*)".to_owned()]));
    }

    #[test]
    fn disconnected_queries_fall_back_to_sequential() {
        let ontology = Ontology::new();
        let query = ConjunctiveQuery::parse("q(x, y) :- Researcher(x), Office(y)").unwrap();
        let omq = OntologyMediatedQuery::new(ontology, query).unwrap();
        let plan = QueryPlan::compile(&omq).unwrap();
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("Office", 1).unwrap();
        let db = Database::builder(s)
            .fact("Researcher", ["a"])
            .fact("Office", ["o"])
            .build()
            .unwrap();
        // Two components, but the disconnected query must not be sharded:
        // the answer (a, o) combines values from both.
        let parallel = plan.execute_parallel(&db, 4).unwrap();
        assert_eq!(parallel.shard_count(), 1);
        assert_eq!(parallel.enumerate_complete().unwrap().len(), 1);
    }

    #[test]
    fn single_shard_structure_apis_error_on_sharded_instances() {
        let omq = office_omq();
        let plan = QueryPlan::compile(&omq).unwrap();
        let parallel = plan.execute_parallel(component_db(), 2).unwrap();
        assert!(parallel.shard_count() > 1);
        assert!(matches!(
            parallel.complete_structure(),
            Err(crate::CoreError::ShardedInstance(_))
        ));
        assert!(matches!(
            parallel.partial_enumerator().map(|_| ()),
            Err(crate::CoreError::ShardedInstance(_))
        ));
        // The shard-aware testers still work.
        assert!(parallel
            .test_complete_names(&["mary", "room1", "main1"])
            .unwrap());
        assert!(!parallel
            .test_complete_names(&["mike", "room1", "main1"])
            .unwrap());
        let mike_partial = parallel.parse_partial(&["mike", "*", "*"]).unwrap();
        assert!(parallel.test_minimal_partial(&mike_partial).unwrap());
    }

    #[test]
    fn wildcard_merge_multi_patterns_track_domination() {
        // Arity 2: patterns (*1,*2) and (*1,*1).
        let mut merge = WildcardMerge::multi(2);
        assert_eq!(merge.patterns.len(), 2);
        let mut emitted: Vec<MultiTuple> = Vec::new();
        let distinct = MultiTuple(vec![MultiValue::Wild(1), MultiValue::Wild(2)]);
        let identified = MultiTuple(vec![MultiValue::Wild(1), MultiValue::Wild(1)]);
        // Shard 1 yields (*1,*2); shard 2 yields (*1,*1), which dominates it.
        merge.offer(distinct.clone(), &mut |t| emitted.push(t));
        merge.offer(identified.clone(), &mut |t| emitted.push(t));
        assert!(emitted.is_empty());
        merge.flush(&mut |t| emitted.push(t));
        assert_eq!(emitted, vec![identified]);
        // A constant-bearing answer kills every pattern it dominates, even if
        // the pattern streams by later.
        let mut merge = WildcardMerge::multi(2);
        let mut emitted: Vec<MultiTuple> = Vec::new();
        let constant = MultiTuple(vec![MultiValue::Const(ConstId(0)), MultiValue::Wild(1)]);
        merge.offer(constant.clone(), &mut |t| emitted.push(t));
        merge.offer(distinct.clone(), &mut |t| emitted.push(t));
        assert_eq!(emitted, vec![constant]);
        merge.flush(&mut |t| emitted.push(t));
        // (*1,*2) was dominated by (c0,*1); (*1,*1) was never seen.
        assert_eq!(emitted.len(), 1);
    }
}
