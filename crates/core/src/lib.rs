//! Core of the OMQ enumeration library — the contribution of *Efficiently
//! Enumerating Answers to Ontology-Mediated Queries* (Lutz & Przybyłko,
//! PODS 2022).
//!
//! The crate provides, for ontology-mediated queries `(O, S, q)` with guarded
//! (or ELI) ontologies:
//!
//! * **single-testing** of complete and (minimal) partial answers in linear
//!   time (Theorem 3.1), see [`single_testing`];
//! * **enumeration of complete answers** with linear-time preprocessing and
//!   constant delay for acyclic, free-connex acyclic OMQs (Theorem 4.1(1)),
//!   see [`enumerate`] and [`omq_eval`];
//! * **all-testing of complete answers** for free-connex acyclic OMQs
//!   (Theorem 4.1(2), Proposition 4.2), see [`all_testing`];
//! * **enumeration of minimal partial answers** with a single wildcard
//!   (Theorem 5.2, Algorithm 1), see [`progress`] and [`partial_enum`];
//! * **enumeration of minimal partial answers with multi-wildcards**
//!   (Theorem 6.1, Algorithm 2), see [`multi_enum`];
//! * **shared-nothing parallel execution**: Gaifman-component sharding of
//!   the chase and the enumeration pipeline across scoped threads
//!   (`QueryPlan::execute_parallel`), see [`parallel`];
//! * the **distributed execution seam**: [`RemoteShard`] answer sources and
//!   `AnswerStream::from_remote`, which run the same cross-shard reduce over
//!   pages produced by worker processes (used by `omq-cluster`), see
//!   [`remote`];
//! * brute-force baselines used by tests and benchmarks, see [`baseline`].
//!
//! All three enumeration modes are served by **one lazy cursor API**:
//! `PreparedInstance::answers(Semantics)` returns an [`AnswerStream`]
//! (`Iterator<Item = Answer>`) with constant work per `next()`, early
//! termination via `take(k)`, and shard-sound chaining — see [`stream`].
//!
//! The top-level entry point is [`OmqEngine`] in [`omq_eval`]; serving
//! workloads should use the compile-once/execute-many [`QueryPlan`] (and the
//! `omq-serve` crate's batch front end) instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod all_testing;
pub mod baseline;
pub mod enumerate;
pub mod error;
pub mod extension;
pub mod multi_enum;
pub mod omq_eval;
pub mod parallel;
pub mod partial_enum;
pub mod plan;
pub mod preprocess;
pub mod progress;
pub mod remote;
pub mod single_testing;
pub mod stream;
pub mod yannakakis;

pub use all_testing::AllTester;
pub use baseline::BruteForce;
pub use enumerate::{collect_answers, AnswerCursor, AnswerIter};
pub use error::CoreError;
pub use extension::{Extension, Tuple};
pub use multi_enum::MultiEnumerator;
pub use omq_data::{Answer, Semantics};
pub use omq_eval::{EngineConfig, OmqEngine, PreprocessStats};
pub use partial_enum::PartialEnumerator;
pub use plan::{PreparedInstance, QueryPlan};
pub use preprocess::{FreeConnexStructure, JoinCsr, PlanSkeleton};
pub use progress::{ProgressIndex, ProgressTree};
pub use remote::RemoteShard;
pub use stream::AnswerStream;

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
