//! Constant-delay enumeration of the answers of an acyclic, free-connex
//! acyclic query over a preprocessed structure (Theorem 4.1(1) of the paper,
//! via the classical CQ enumeration result it reduces to).
//!
//! After the linear-time preprocessing of [`crate::preprocess`], the answers
//! are exactly the tuples of the natural join of the `q₁` node extensions.
//! Because `q₁` is full (every variable is an answer variable), acyclic, and
//! its extensions satisfy the progress condition, a pre-order traversal of the
//! join tree that extends the current partial answer never gets stuck and
//! never produces duplicates; the work per answer is bounded by the query
//! size, independent of the database.
//!
//! The per-answer loop is **hash-free and allocation-free** (beyond the
//! output tuple itself): candidates at each level are a dense CSR slice of
//! the node's [`JoinCsr`] keyed by the parent's current tuple index — by the
//! join-tree connectivity condition, any variable a node shares with an
//! earlier node occurs in its parent, so matching the predecessor variables
//! through the CSR is all the filtering the traversal needs.  Answer tuples
//! are materialised from the per-node current tuples through the
//! precompiled `answer_sources` columns.
//!
//! The traversal state lives in [`AnswerCursor`], which does **not** borrow
//! the structure: every step takes the structure as an argument, so a cursor
//! can sit next to the [`FreeConnexStructure`] it walks inside one owning
//! value (the `AnswerStream` of [`crate::stream`] does exactly that).
//! [`AnswerIter`] pairs a cursor with a borrowed structure for the common
//! local-iteration case.
//!
//! [`JoinCsr`]: crate::preprocess::JoinCsr

use crate::preprocess::{FreeConnexStructure, JoinCsr};
use omq_data::{kernels, Value};

/// The resumable traversal state of one constant-delay enumeration run.
///
/// A cursor is created for one specific [`FreeConnexStructure`] and must be
/// stepped with that same structure; mixing structures is a logic error
/// (tuple indices would be interpreted against the wrong extensions).
#[derive(Debug, Clone)]
pub struct AnswerCursor {
    /// One entry per pre-order position reached so far.
    levels: Vec<Level>,
    /// Current tuple index per node (valid for nodes on the level stack).
    cur_tuple: Vec<usize>,
    /// Reused answer-materialisation buffer for [`AnswerCursor::fill_with`];
    /// lives on the cursor so batched pulls allocate it once per stream, not
    /// once per batch.
    scratch: Vec<Value>,
    state: IterState,
}

/// Candidate cursor of one pre-order level.
#[derive(Debug, Clone)]
struct Level {
    node: usize,
    /// Candidate source: either all tuples of the node, or a CSR slice of the
    /// node's parent join.
    cands: Cands,
    cursor: usize,
}

#[derive(Debug, Clone)]
enum Cands {
    /// All tuples `0..len` (root or no predecessor variables).
    All { len: usize },
    /// CSR slice `start..start + len` of the node's `parent_join.tuples`.
    Csr { start: usize, len: usize },
}

impl Cands {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Cands::All { len } | Cands::Csr { len, .. } => *len,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum IterState {
    /// Boolean query: emit the empty tuple once if satisfiable.
    Boolean { emitted: bool },
    /// No answers at all.
    Empty,
    /// Regular enumeration; `started` is false before the first answer.
    Running { started: bool, done: bool },
}

impl AnswerCursor {
    /// Creates a cursor positioned before the first answer of `structure`.
    pub fn new(structure: &FreeConnexStructure) -> Self {
        let state = if let Some(satisfiable) = structure.boolean_satisfiable {
            if satisfiable {
                IterState::Boolean { emitted: false }
            } else {
                IterState::Empty
            }
        } else if structure.empty {
            IterState::Empty
        } else {
            IterState::Running {
                started: false,
                done: false,
            }
        };
        AnswerCursor {
            levels: Vec::with_capacity(structure.preorder.len()),
            cur_tuple: vec![0; structure.nodes.len()],
            scratch: Vec::with_capacity(structure.answer_sources.len()),
            state,
        }
    }

    /// Produces the next answer, or `None` once the enumeration is
    /// exhausted.  Constant work per call (in the size of the query).
    pub fn next_answer(&mut self, structure: &FreeConnexStructure) -> Option<Vec<Value>> {
        match self.state {
            IterState::Empty => None,
            IterState::Boolean { emitted } => {
                if emitted {
                    None
                } else {
                    self.state = IterState::Boolean { emitted: true };
                    Some(Vec::new())
                }
            }
            IterState::Running { started, done } => {
                if done {
                    return None;
                }
                let produced = if started {
                    self.advance(structure)
                } else {
                    self.descend(structure, 0)
                };
                self.state = IterState::Running {
                    started: true,
                    done: !produced,
                };
                if produced {
                    Some(self.current_answer(structure))
                } else {
                    None
                }
            }
        }
    }

    /// Batched pull: produces up to `limit` answers, invoking `emit` once per
    /// answer with the answer values in a reused scratch buffer.  Equivalent
    /// to `limit` calls of [`AnswerCursor::next_answer`] (same answers, same
    /// order), but the state machine is entered once per batch and no
    /// per-answer `Vec<Value>` is allocated — the caller copies out of the
    /// scratch slice in whatever shape it needs.  Returns the number of
    /// answers emitted; a return `< limit` means the enumeration is
    /// exhausted.
    pub fn fill_with(
        &mut self,
        structure: &FreeConnexStructure,
        limit: usize,
        mut emit: impl FnMut(&[Value]),
    ) -> usize {
        if limit == 0 {
            return 0;
        }
        match self.state {
            IterState::Empty => 0,
            IterState::Boolean { emitted } => {
                if emitted {
                    0
                } else {
                    self.state = IterState::Boolean { emitted: true };
                    emit(&[]);
                    1
                }
            }
            IterState::Running { started, done } => {
                if done {
                    return 0;
                }
                let mut started = started;
                let mut produced = 0usize;
                // The scratch buffer is a cursor field, detached for the
                // duration of the batch so the traversal methods can borrow
                // `self` mutably while `emit` sees the materialised slice.
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut exhausted = false;
                while produced < limit {
                    let stepped = if started {
                        self.advance(structure)
                    } else {
                        self.descend(structure, 0)
                    };
                    started = true;
                    if !stepped {
                        exhausted = true;
                        break;
                    }
                    scratch.clear();
                    scratch.extend(structure.answer_sources.iter().map(|&(node, col)| {
                        structure.nodes[node]
                            .extension
                            .value(self.cur_tuple[node], col)
                    }));
                    emit(&scratch);
                    produced += 1;
                }
                self.scratch = scratch;
                self.state = IterState::Running {
                    started: true,
                    done: exhausted,
                };
                produced
            }
        }
    }

    /// Computes the candidate source for the node at pre-order position
    /// `depth` under the current per-node tuple choices.
    #[inline]
    fn candidates_for(&self, structure: &FreeConnexStructure, depth: usize) -> (usize, Cands) {
        let node = structure.preorder[depth];
        let node_data = &structure.nodes[node];
        let cands = match (&node_data.parent_join, node_data.parent) {
            (Some(join), Some(parent)) => {
                let parent_tuple = self.cur_tuple[parent];
                let start = join.offsets[parent_tuple] as usize;
                let end = join.offsets[parent_tuple + 1] as usize;
                Cands::Csr {
                    start,
                    len: end - start,
                }
            }
            _ => Cands::All {
                len: node_data.extension.len(),
            },
        };
        (node, cands)
    }

    /// Records the tuple selected by the cursor of `level`.
    #[inline]
    fn bind(&mut self, structure: &FreeConnexStructure, level: usize) {
        let Level {
            node,
            ref cands,
            cursor,
        } = self.levels[level];
        let tuple_idx = match cands {
            Cands::All { .. } => cursor,
            Cands::Csr { start, .. } => {
                let join = structure.nodes[node]
                    .parent_join
                    .as_ref()
                    .expect("CSR candidates imply a parent join");
                join.tuples[start + cursor] as usize
            }
        };
        self.cur_tuple[node] = tuple_idx;
    }

    /// Descends from pre-order position `depth` to the last level, binding the
    /// first candidate at each level.  Returns `false` if some level has no
    /// candidate (which the progress condition rules out, but is handled
    /// defensively).
    fn descend(&mut self, structure: &FreeConnexStructure, mut depth: usize) -> bool {
        while depth < structure.preorder.len() {
            let (node, cands) = self.candidates_for(structure, depth);
            if cands.len() == 0 {
                return false;
            }
            self.levels.push(Level {
                node,
                cands,
                cursor: 0,
            });
            self.bind(structure, depth);
            depth += 1;
        }
        true
    }

    /// Advances to the next full assignment; returns `false` when exhausted.
    fn advance(&mut self, structure: &FreeConnexStructure) -> bool {
        loop {
            let Some(level) = self.levels.len().checked_sub(1) else {
                return false;
            };
            self.levels[level].cursor += 1;
            if self.levels[level].cursor < self.levels[level].cands.len() {
                self.bind(structure, level);
                if self.descend(structure, level + 1) {
                    return true;
                }
                // Defensive: treat a failed descent as exhaustion of this
                // candidate (should not happen when the progress condition
                // holds).
                continue;
            }
            self.levels.pop();
        }
    }

    /// Materialises the current answer through the precompiled sources.
    fn current_answer(&self, structure: &FreeConnexStructure) -> Vec<Value> {
        structure
            .answer_sources
            .iter()
            .map(|&(node, col)| {
                structure.nodes[node]
                    .extension
                    .value(self.cur_tuple[node], col)
            })
            .collect()
    }
}

/// A constant-delay iterator over the answers of a preprocessed query.
///
/// Yields tuples over the query's answer positions (repeated answer variables
/// repeat their value).  Tuples contain labelled nulls iff the structure was
/// built without the `complete_only` relativisation.
pub struct AnswerIter<'a> {
    structure: &'a FreeConnexStructure,
    cursor: AnswerCursor,
}

impl<'a> AnswerIter<'a> {
    /// Creates an iterator over the answers described by `structure`.
    pub fn new(structure: &'a FreeConnexStructure) -> Self {
        AnswerIter {
            structure,
            cursor: AnswerCursor::new(structure),
        }
    }
}

impl Iterator for AnswerIter<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Self::Item> {
        self.cursor.next_answer(self.structure)
    }
}

impl std::iter::FusedIterator for AnswerIter<'_> {}

/// Convenience: collects all answers of a preprocessed structure.
pub fn collect_answers(structure: &FreeConnexStructure) -> Vec<Vec<Value>> {
    AnswerIter::new(structure).collect()
}

/// Candidate tuples of `node` under the bindings recorded in `cur_tuple`:
/// either every extension row, or the CSR slice of the node's parent join
/// keyed by the parent's current tuple.  The standalone twin of
/// [`AnswerCursor::candidates_for`], usable without cursor state.
enum NodeCands<'a> {
    All(usize),
    Csr {
        join: &'a JoinCsr,
        start: usize,
        len: usize,
    },
}

impl NodeCands<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            NodeCands::All(len) | NodeCands::Csr { len, .. } => *len,
        }
    }
}

#[inline]
fn node_cands<'a>(
    structure: &'a FreeConnexStructure,
    cur_tuple: &[usize],
    node: usize,
) -> NodeCands<'a> {
    let node_data = &structure.nodes[node];
    match (&node_data.parent_join, node_data.parent) {
        (Some(join), Some(parent)) => {
            let parent_tuple = cur_tuple[parent];
            let start = join.offsets[parent_tuple] as usize;
            let end = join.offsets[parent_tuple + 1] as usize;
            NodeCands::Csr {
                join,
                start,
                len: end - start,
            }
        }
        _ => NodeCands::All(node_data.extension.len()),
    }
}

/// Counts the answers of a preprocessed structure **without materialising a
/// single tuple** — the aggregate fast path behind
/// `PreparedInstance::count`.
///
/// The traversal walks the same pre-order candidate tree as
/// [`AnswerCursor`], but stops one level short: because every tuple at every
/// node extends to a full answer (the progress condition) and the full query
/// `q₁` makes assignments and answers correspond one-to-one, the number of
/// answers below a depth-`n-2` prefix is exactly the *fan-out* of the last
/// pre-order node.  That fan-out is a CSR range length, so the deepest level
/// collapses into [`kernels::sum_csr_lens`] / [`kernels::range_len`] folds
/// over the offset arrays — `O(prefixes at depth n-2)` work instead of
/// `O(answers)`, with the leaf level never visited at all.
pub fn count_answers(structure: &FreeConnexStructure) -> u64 {
    if let Some(satisfiable) = structure.boolean_satisfiable {
        return u64::from(satisfiable);
    }
    if structure.empty {
        return 0;
    }
    let n = structure.preorder.len();
    if n == 1 {
        return structure.nodes[structure.preorder[0]].extension.len() as u64;
    }
    let mut cur_tuple = vec![0usize; structure.nodes.len()];
    count_prefixes(structure, &mut cur_tuple, 0)
}

/// Counts the answers extending the bindings of `cur_tuple` for the nodes at
/// pre-order positions `0..depth`.  Only called with `depth <= n - 2`.
fn count_prefixes(structure: &FreeConnexStructure, cur_tuple: &mut [usize], depth: usize) -> u64 {
    let n = structure.preorder.len();
    let node = structure.preorder[depth];
    if depth == n - 2 {
        let leaf = structure.preorder[n - 1];
        let leaf_data = &structure.nodes[leaf];
        // Does the leaf's candidate slice depend on *this* node's choice?
        let leaf_keyed_here = leaf_data.parent == Some(node) && leaf_data.parent_join.is_some();
        let cands = node_cands(structure, cur_tuple, node);
        if leaf_keyed_here {
            let leaf_join = leaf_data
                .parent_join
                .as_ref()
                .expect("leaf_keyed_here implies a parent join");
            match cands {
                // Dense: fan-outs over all rows telescope in O(1).
                NodeCands::All(len) => kernels::range_len(&leaf_join.offsets, 0, len),
                // Sparse: fold the fan-outs of the candidate tuple ids with
                // the chunked CSR kernel.
                NodeCands::Csr { join, start, len } => {
                    kernels::sum_csr_lens(&leaf_join.offsets, &join.tuples[start..start + len])
                }
            }
        } else {
            // The leaf's candidates are keyed by an ancestor bound at a
            // shallower depth (or by nothing): its count is one constant
            // factor for every candidate of this node.
            let here = cands.len() as u64;
            here * node_cands(structure, cur_tuple, leaf).len() as u64
        }
    } else {
        let mut total = 0u64;
        match node_cands(structure, cur_tuple, node) {
            NodeCands::All(len) => {
                for t in 0..len {
                    cur_tuple[node] = t;
                    total += count_prefixes(structure, cur_tuple, depth + 1);
                }
            }
            NodeCands::Csr { join, start, len } => {
                for i in 0..len {
                    cur_tuple[node] = join.tuples[start + i] as usize;
                    total += count_prefixes(structure, cur_tuple, depth + 1);
                }
            }
        }
        total
    }
}

/// Emptiness probe: `true` iff the structure has at least one answer.
/// Constant work — one cursor descent, no materialisation beyond the first
/// tuple's indices.
pub fn has_answer(structure: &FreeConnexStructure) -> bool {
    AnswerCursor::new(structure)
        .next_answer(structure)
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::FreeConnexStructure;
    use omq_cq::{homomorphism, ConjunctiveQuery};
    use omq_data::{Database, Schema};
    use rustc_hash::FxHashSet;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("S", 2).unwrap();
        s.add_relation("T", 1).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["a", "c"])
            .fact("R", ["d", "b"])
            .fact("S", ["b", "u"])
            .fact("S", ["b", "v"])
            .fact("S", ["c", "w"])
            .fact("T", ["a"])
            .fact("T", ["d"])
            .build()
            .unwrap()
    }

    fn check_against_brute_force(query_text: &str, database: &Database) {
        let q = ConjunctiveQuery::parse(query_text).unwrap();
        let structure = FreeConnexStructure::build(&q, database, false).unwrap();
        let mut fast: Vec<Vec<Value>> = collect_answers(&structure);
        let mut brute = homomorphism::evaluate(&q, database);
        fast.sort();
        brute.sort();
        assert_eq!(fast, brute, "query {query_text}");
        // No duplicates.
        let set: FxHashSet<Vec<Value>> = fast.iter().cloned().collect();
        assert_eq!(set.len(), fast.len());
    }

    #[test]
    fn matches_brute_force_on_various_queries() {
        let database = db();
        for text in [
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x) :- R(x, y), T(x)",
            "q(x, y, z) :- R(x, y), S(y, z), T(x)",
            "q(x, y, u, v) :- R(x, y), S(u, v)",
            "q(x, x, y) :- R(x, y)",
            "q(y) :- R('a', y)",
        ] {
            check_against_brute_force(text, &database);
        }
    }

    #[test]
    fn boolean_queries_emit_empty_tuple() {
        let database = db();
        let q = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &database, true).unwrap();
        let answers = collect_answers(&s);
        assert_eq!(answers, vec![Vec::new()]);

        let q2 = ConjunctiveQuery::parse("q() :- S(x, y), T(y)").unwrap();
        let s2 = FreeConnexStructure::build(&q2, &database, true).unwrap();
        assert!(collect_answers(&s2).is_empty());
    }

    #[test]
    fn empty_structure_yields_nothing() {
        let database = db();
        let q = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        let s = FreeConnexStructure::build(&q, &database, true).unwrap();
        assert!(collect_answers(&s).is_empty());
    }

    #[test]
    fn iterator_is_restartable_from_structure() {
        let database = db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &database, true).unwrap();
        let first: Vec<_> = AnswerIter::new(&s).collect();
        let second: Vec<_> = AnswerIter::new(&s).collect();
        assert_eq!(first, second);
        // (a,b,u), (a,b,v), (a,c,w), (d,b,u), (d,b,v)
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn cursor_is_pausable_and_resumable() {
        let database = db();
        let q = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&q, &database, true).unwrap();
        let all: Vec<_> = AnswerIter::new(&s).collect();
        // Drive the raw cursor by hand with pauses in between: the answer
        // sequence must be identical to the uninterrupted iteration.
        let mut cursor = AnswerCursor::new(&s);
        let mut resumed = Vec::new();
        while let Some(answer) = cursor.next_answer(&s) {
            resumed.push(answer);
            // A paused cursor is just a value; cloning it forks the
            // enumeration state.
            let mut fork = cursor.clone();
            if let Some(peek) = fork.next_answer(&s) {
                assert_eq!(peek, all[resumed.len()]);
            }
        }
        assert_eq!(resumed, all);
        // Stepping an exhausted cursor keeps returning `None` (fused).
        assert!(cursor.next_answer(&s).is_none());
    }

    #[test]
    fn answer_count_on_cross_product_query() {
        let database = db();
        // Disconnected: 3 R-facts × 3 S-facts = 9 answers.
        let q = ConjunctiveQuery::parse("q(x, y, u, v) :- R(x, y), S(u, v)").unwrap();
        let s = FreeConnexStructure::build(&q, &database, true).unwrap();
        assert_eq!(collect_answers(&s).len(), 9);
    }

    #[test]
    fn counting_walk_agrees_with_enumeration() {
        let database = db();
        for text in [
            "q(x, y) :- R(x, y)",
            "q(x, y, z) :- R(x, y), S(y, z)",
            "q(x) :- R(x, y), T(x)",
            "q(x, y, z) :- R(x, y), S(y, z), T(x)",
            "q(x, y, u, v) :- R(x, y), S(u, v)",
            "q(x, x, y) :- R(x, y)",
            "q(y) :- R('a', y)",
            "q(x, y, z, w) :- R(x, y), S(y, z), S(y, w)",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            for complete_only in [false, true] {
                let s = FreeConnexStructure::build(&q, &database, complete_only).unwrap();
                let drained = collect_answers(&s).len() as u64;
                assert_eq!(count_answers(&s), drained, "query {text}");
                assert_eq!(has_answer(&s), drained > 0, "query {text}");
            }
        }
    }

    #[test]
    fn counting_walk_handles_boolean_and_empty() {
        let database = db();
        let sat = ConjunctiveQuery::parse("q() :- R(x, y), S(y, z)").unwrap();
        let s = FreeConnexStructure::build(&sat, &database, true).unwrap();
        assert_eq!(count_answers(&s), 1);
        assert!(has_answer(&s));

        let unsat = ConjunctiveQuery::parse("q() :- S(x, y), T(y)").unwrap();
        let s = FreeConnexStructure::build(&unsat, &database, true).unwrap();
        assert_eq!(count_answers(&s), 0);
        assert!(!has_answer(&s));

        let missing = ConjunctiveQuery::parse("q(x) :- Missing(x)").unwrap();
        let s = FreeConnexStructure::build(&missing, &database, true).unwrap();
        assert_eq!(count_answers(&s), 0);
        assert!(!has_answer(&s));
    }
}
