//! `omq-cluster` — coordinator/worker **distributed execution** of one
//! query plan across worker processes.
//!
//! This crate scales the engine's shared-nothing parallel story
//! (`QueryPlan::execute_parallel`, threads in one address space) out to
//! **processes**: a coordinator shards the database by Gaifman component,
//! ships each shard's facts plus the ontology/query text to workers over
//! the length-prefixed JSON wire shared with `omq-server` (the `omq-wire`
//! codec), places shards with a work-stealing queue (largest first, idle
//! workers steal), and folds the returned answer pages through the engine's
//! own cross-shard reduce — wildcard-minimality merge and Boolean dedup —
//! so callers drain a perfectly ordinary `AnswerStream`.
//!
//! The soundness argument is unchanged from the in-process path: for
//! connected queries under guarded ontologies, Gaifman components chase and
//! enumerate independently (paper §3, Prop. 3.3), constant-bearing answers
//! are globally minimal whenever they are shard-locally minimal, and only
//! wildcard-only tuples need the cross-shard merge.
//!
//! Entry points:
//!
//! * [`execute`] — run a query distributed, returning a [`ClusterRun`]
//!   (stream + handle + stats).
//! * [`run_worker`] / [`maybe_run_worker`] — the worker side; the
//!   `omq-cluster-worker` binary is a thin wrapper, and any binary can
//!   serve as its own fleet by calling [`maybe_run_worker`] first thing in
//!   `main` (the integration tests self-spawn this way).
//!
//! Fault handling: shard results commit exactly once (pages buffer until
//! the shard's done marker), a dead worker's uncommitted shards are
//! requeued for the survivors, and the run only fails when a worker reports
//! a deterministic evaluation error or the whole fleet dies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod messages;
pub mod worker;

pub use coordinator::{
    execute, ClusterConfig, ClusterHandle, ClusterRun, ClusterStats, Kill, WorkerSpawn,
};
pub use messages::{CoordFrame, FactRow, WorkerFrame};
pub use worker::{maybe_run_worker, run_worker, WorkerFault};

use omq_chase::ChaseError;
use omq_core::CoreError;
use omq_cq::CqError;
use omq_data::DataError;
use omq_wire::ErrorCode;

/// Errors raised while setting up or driving a distributed run.
///
/// Once [`execute`] has returned a [`ClusterRun`], runtime failures (worker
/// death, protocol violations mid-stream) surface through the answer
/// stream's `error()` instead, exactly like local enumeration failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Socket or process-spawn failure.  Carries the [`std::io::ErrorKind`]
    /// and rendered message rather than the error itself so the type stays
    /// `Clone`/`Eq` like every other error in the stack.
    Io(std::io::ErrorKind, String),
    /// The ontology was rejected (parse error, not guarded).
    Chase(ChaseError),
    /// The query was rejected (parse error, not acyclic).
    Cq(CqError),
    /// Plan compilation or evaluation failed on the coordinator.
    Core(CoreError),
    /// Shard export/import failed (e.g. a labelled null in the input).
    Data(DataError),
    /// A peer broke the coordinator/worker protocol.
    Protocol(String),
    /// No worker connected before the timeout.
    NoWorkers(String),
}

impl ClusterError {
    /// The wire error code this failure maps to — the same classification
    /// the single-node server uses, so clients see one error taxonomy.
    pub fn wire_code(&self) -> ErrorCode {
        match self {
            ClusterError::Io(..) => ErrorCode::Internal,
            ClusterError::Chase(e) => ErrorCode::for_chase(e),
            ClusterError::Cq(e) => ErrorCode::for_cq(e),
            ClusterError::Core(e) => ErrorCode::for_core(e),
            ClusterError::Data(e) => ErrorCode::for_data(e),
            ClusterError::Protocol(_) => ErrorCode::MalformedFrame,
            ClusterError::NoWorkers(_) => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(_, message) => write!(f, "cluster i/o error: {message}"),
            ClusterError::Chase(e) => write!(f, "{e}"),
            ClusterError::Cq(e) => write!(f, "{e}"),
            ClusterError::Core(e) => write!(f, "{e}"),
            ClusterError::Data(e) => write!(f, "{e}"),
            ClusterError::Protocol(msg) => write!(f, "cluster protocol violation: {msg}"),
            ClusterError::NoWorkers(msg) => write!(f, "no cluster workers: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Chase(e) => Some(e),
            ClusterError::Cq(e) => Some(e),
            ClusterError::Core(e) => Some(e),
            ClusterError::Data(e) => Some(e),
            ClusterError::Io(..) | ClusterError::Protocol(_) | ClusterError::NoWorkers(_) => None,
        }
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e.kind(), e.to_string())
    }
}

impl From<ChaseError> for ClusterError {
    fn from(e: ChaseError) -> Self {
        ClusterError::Chase(e)
    }
}

impl From<CqError> for ClusterError {
    fn from(e: CqError) -> Self {
        ClusterError::Cq(e)
    }
}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<DataError> for ClusterError {
    fn from(e: DataError) -> Self {
        ClusterError::Data(e)
    }
}
