//! The worker side: one process (or thread), one TCP connection, shards in,
//! answer pages out.
//!
//! A worker dials the coordinator's listener, announces itself with a
//! `ready` frame, and then serves the session: `setup` compiles the plan
//! once, each shard arrives as `facts` batches and is evaluated on `run` —
//! chase plus enumeration, exactly the in-process pipeline — with the
//! answers streamed back as byte-bounded `page` frames rendered through
//! [`omq_wire::render_answer`].  The worker holds at most one shard's
//! database at a time; it is dropped as soon as the shard's final page is
//! out.
//!
//! Deterministic evaluation failures (a query that does not compile, a shard
//! that fails mid-enumeration) are *reported*, not crashes: an `error` frame
//! names the shard and classifies the failure with the shared
//! [`ErrorCode`]s, and the coordinator aborts the run — rerunning a
//! deterministic failure on another worker would fail the same.  Transport
//! loss (the process dying, the socket dropping) is the coordinator's
//! problem: it reassigns the shard elsewhere.
//!
//! # Process entry points
//!
//! [`run_worker`] is the library entry; the `omq-cluster-worker` binary and
//! [`maybe_run_worker`] wrap it for process spawning.  `maybe_run_worker`
//! checks `OMQ_CLUSTER_WORKER_ADDR` and, when set, runs the worker loop and
//! reports `true` — a test binary or benchmark harness calls it first thing
//! in `main` (or from a dedicated `#[test]` hook), so the coordinator can
//! spawn *the current executable* as its worker fleet.
//!
//! # Fault injection
//!
//! [`WorkerFault`] makes a worker drop its connection after sending a fixed
//! number of pages — the hook behind the kill-a-worker reassignment tests
//! and the E20 fault row.  Process workers read it from
//! `OMQ_CLUSTER_DIE_AFTER_PAGES` (set by the coordinator on the one child it
//! is told to kill); in-process workers get it passed directly.

use crate::messages::{CoordFrame, FactRow, WorkerFrame, MAX_PAGE_BYTES, PAGE_ANSWERS};
use crate::ClusterError;
use omq_core::{AnswerStream, QueryPlan};
use omq_data::{Database, Schema, Semantics};
use omq_wire::{answer_wire_len, render_answer, ErrorCode, FrameDecoder};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Environment variable carrying the coordinator address to dial; its
/// presence turns a process into a worker (see [`maybe_run_worker`]).
pub const WORKER_ADDR_ENV: &str = "OMQ_CLUSTER_WORKER_ADDR";

/// Environment variable carrying the worker's index within the fleet.
pub const WORKER_INDEX_ENV: &str = "OMQ_CLUSTER_WORKER_INDEX";

/// Environment variable enabling fault injection: the worker drops its
/// connection after sending this many pages.
pub const WORKER_DIE_ENV: &str = "OMQ_CLUSTER_DIE_AFTER_PAGES";

/// Environment variable overriding the answers-per-page cap (tests use a
/// small value to force multi-page shards).
pub const WORKER_PAGE_ENV: &str = "OMQ_CLUSTER_PAGE_ANSWERS";

/// Fault injection for resilience tests: drop the connection cold after
/// `die_after_pages` page frames, as a crashing process would.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerFault {
    /// Drop the connection after sending this many pages (`None`: healthy).
    pub die_after_pages: Option<u32>,
    /// Override the answers-per-page cap (`None`: the environment, then the
    /// [`PAGE_ANSWERS`] default).  Tests set `1` to force one page per
    /// answer, making mid-shard deaths deterministic.
    pub page_answers: Option<usize>,
}

impl WorkerFault {
    /// Reads the fault plan a coordinator parent may have set in the
    /// environment.
    pub fn from_env() -> WorkerFault {
        WorkerFault {
            die_after_pages: std::env::var(WORKER_DIE_ENV)
                .ok()
                .and_then(|v| v.parse().ok()),
            page_answers: std::env::var(WORKER_PAGE_ENV)
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }
}

/// If this process was spawned as a cluster worker (the address environment
/// variable is set), runs the worker loop to completion and returns `true`;
/// otherwise returns `false` immediately.  Call first thing in `main` of
/// any binary a coordinator may spawn as its own worker fleet.
pub fn maybe_run_worker() -> bool {
    let Ok(addr) = std::env::var(WORKER_ADDR_ENV) else {
        return false;
    };
    let index = std::env::var(WORKER_INDEX_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // A worker failure surfaces coordinator-side (error frame or hangup);
    // the process itself exits quietly either way.
    let _ = run_worker(&addr, index, WorkerFault::from_env());
    true
}

/// Connects to the coordinator at `addr` and serves one session: announces
/// `ready`, receives the setup and shards, streams answer pages back, and
/// returns when the coordinator says `bye` (or the connection drops, or the
/// injected `fault` trips).
pub fn run_worker(addr: &str, index: u64, fault: WorkerFault) -> Result<(), ClusterError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let page_answers = fault
        .page_answers
        .filter(|&n| n > 0)
        .unwrap_or(PAGE_ANSWERS);
    Session {
        stream,
        decoder: FrameDecoder::new(),
        plan: None,
        schema: None,
        staged: HashMap::new(),
        pages_sent: 0,
        fault,
        page_answers,
    }
    .serve(index)
}

/// One worker session: the connection, the compiled plan, and the shards
/// staged but not yet run.
struct Session {
    stream: TcpStream,
    decoder: FrameDecoder,
    plan: Option<QueryPlan>,
    schema: Option<Schema>,
    staged: HashMap<u64, Vec<FactRow>>,
    pages_sent: u32,
    fault: WorkerFault,
    page_answers: usize,
}

/// The worker's reaction to one coordinator frame.
enum Step {
    /// Keep serving.
    Continue,
    /// Session over (bye, or the injected fault tripped).
    Stop,
}

impl Session {
    fn serve(mut self, index: u64) -> Result<(), ClusterError> {
        self.send(&WorkerFrame::Ready { worker: index }.encode())?;
        loop {
            let payload = match self.read_frame()? {
                Some(p) => p,
                // Coordinator hung up: session over.
                None => return Ok(()),
            };
            let frame = match CoordFrame::decode(&payload) {
                Ok(f) => f,
                Err(v) => {
                    // A malformed coordinator is unrecoverable for the
                    // session — report and hang up.
                    self.send_error(None, ErrorCode::MalformedFrame, &v.to_string())?;
                    return Ok(());
                }
            };
            match self.handle(frame)? {
                Step::Continue => {}
                Step::Stop => return Ok(()),
            }
        }
    }

    fn handle(&mut self, frame: CoordFrame) -> Result<Step, ClusterError> {
        match frame {
            CoordFrame::Setup {
                ontology,
                query,
                relations,
            } => {
                match compile(&ontology, &query, &relations) {
                    Ok((plan, schema)) => {
                        self.plan = Some(plan);
                        self.schema = Some(schema);
                    }
                    Err((code, message)) => {
                        // Poison the session: without a plan nothing can run.
                        self.send_error(None, code, &message)?;
                    }
                }
                Ok(Step::Continue)
            }
            CoordFrame::Facts { shard, rows, last } => {
                self.staged.entry(shard).or_default().extend(rows);
                // `last` is advisory — `run` is what triggers evaluation —
                // but make sure even an empty final batch stages the shard.
                if last {
                    self.staged.entry(shard).or_default();
                }
                Ok(Step::Continue)
            }
            CoordFrame::Run { shard, semantics } => self.run_shard(shard, semantics),
            CoordFrame::Bye => Ok(Step::Stop),
        }
    }

    /// Chases and enumerates one staged shard, streaming pages back.
    fn run_shard(&mut self, shard: u64, semantics: Semantics) -> Result<Step, ClusterError> {
        let (Some(plan), Some(schema)) = (self.plan.as_ref(), self.schema.as_ref()) else {
            self.send_error(Some(shard), ErrorCode::MalformedFrame, "run before setup")?;
            return Ok(Step::Continue);
        };
        let Some(rows) = self.staged.remove(&shard) else {
            self.send_error(
                Some(shard),
                ErrorCode::MalformedFrame,
                "run of a shard with no staged facts",
            )?;
            return Ok(Step::Continue);
        };
        // Rebuild the shard database from the shipped rows (constants are
        // re-interned by name), then run the standard pipeline on it.
        let db = match Database::from_fact_rows(schema.clone(), &rows) {
            Ok(db) => db,
            Err(e) => {
                let message = e.to_string();
                self.send_error(Some(shard), ErrorCode::for_data(&e), &message)?;
                return Ok(Step::Continue);
            }
        };
        let stream = plan
            .execute(&db)
            .and_then(|instance| instance.answers(semantics));
        let mut stream: AnswerStream = match stream {
            Ok(s) => s,
            Err(e) => {
                let message = e.to_string();
                self.send_error(Some(shard), ErrorCode::for_core(&e), &message)?;
                return Ok(Step::Continue);
            }
        };
        // Page out: bounded by answer count and encoded bytes.  Rendering
        // resolves constants through the shard database built above — the
        // chase only mints nulls, which surface as wildcards, so every
        // constant in an answer has a name the coordinator also interns.
        let mut page: Vec<Vec<String>> = Vec::new();
        let mut page_bytes = 0usize;
        for answer in &mut stream {
            let rendered = render_answer(&answer, &db);
            let bytes = answer_wire_len(&rendered);
            if !page.is_empty()
                && (page.len() >= self.page_answers || page_bytes + bytes > MAX_PAGE_BYTES)
            {
                let full = std::mem::take(&mut page);
                page_bytes = 0;
                if let Step::Stop = self.send_page(shard, full, false)? {
                    return Ok(Step::Stop);
                }
            }
            page_bytes += bytes;
            page.push(rendered);
        }
        if let Some(e) = stream.error() {
            let message = e.to_string();
            self.send_error(Some(shard), ErrorCode::for_core(e), &message)?;
            return Ok(Step::Continue);
        }
        self.send_page(shard, page, true)
    }

    fn send_page(
        &mut self,
        shard: u64,
        answers: Vec<Vec<String>>,
        done: bool,
    ) -> Result<Step, ClusterError> {
        self.send(
            &WorkerFrame::Page {
                shard,
                answers,
                done,
            }
            .encode(),
        )?;
        self.pages_sent += 1;
        if let Some(limit) = self.fault.die_after_pages {
            if self.pages_sent >= limit {
                // Simulate a crash: drop the connection cold, mid-shard.
                return Ok(Step::Stop);
            }
        }
        Ok(Step::Continue)
    }

    fn send_error(
        &mut self,
        shard: Option<u64>,
        code: ErrorCode,
        message: &str,
    ) -> Result<(), ClusterError> {
        self.send(
            &WorkerFrame::Error {
                shard,
                code,
                message: message.to_owned(),
            }
            .encode(),
        )
    }

    fn send(&mut self, bytes: &[u8]) -> Result<(), ClusterError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Blocks for the next complete frame; `None` on orderly hangup.
    fn read_frame(&mut self) -> Result<Option<Vec<u8>>, ClusterError> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(payload) = self
                .decoder
                .next_frame()
                .map_err(|e| ClusterError::Protocol(e.to_string()))?
            {
                return Ok(Some(payload));
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.decoder.feed(&buf[..n]);
        }
    }
}

/// Parses the setup and compiles the plan, classifying failures with the
/// shared wire codes.
fn compile(
    ontology: &str,
    query: &str,
    relations: &[(String, u64)],
) -> Result<(QueryPlan, Schema), (ErrorCode, String)> {
    let mut schema = Schema::new();
    for (name, arity) in relations {
        schema
            .add_relation(name, *arity as usize)
            .map_err(|e| (ErrorCode::for_data(&e), e.to_string()))?;
    }
    let ontology = omq_chase::Ontology::parse(ontology)
        .map_err(|e| (ErrorCode::for_chase(&e), e.to_string()))?;
    let query = omq_cq::ConjunctiveQuery::parse(query)
        .map_err(|e| (ErrorCode::for_cq(&e), e.to_string()))?;
    let omq = omq_chase::OntologyMediatedQuery::new(ontology, query)
        .map_err(|e| (ErrorCode::for_chase(&e), e.to_string()))?;
    let plan = QueryPlan::compile(&omq).map_err(|e| (ErrorCode::for_core(&e), e.to_string()))?;
    Ok((plan, schema))
}
