//! The coordinator/worker frame grammar.
//!
//! Same substrate as the client/server protocol — 4-byte big-endian length
//! prefix, JSON object payload tagged by a `"t"` member, all through
//! [`omq_wire`] — with a vocabulary for shipping work instead of serving
//! queries:
//!
//! ```text
//! coordinator → worker                     worker → coordinator
//! ─────────────────────                    ─────────────────────
//! setup  ontology, query, relations       ready  worker index
//! facts  shard, rows, last                page   shard, answers, done
//! run    shard, semantics                 error  shard?, code, message
//! bye
//! ```
//!
//! A worker announces itself with `ready`, receives one `setup`, then loops:
//! the coordinator ships a shard as one or more `facts` frames (the last one
//! flagged), starts it with `run`, and the worker streams `page` frames back
//! until the one flagged `done`.  `bye` ends the session.  Fact rows and
//! answers both travel as arrays of strings — rows as `[relation, arg…]`
//! (see `Database::export_fact_rows`), answers in the rendered convention of
//! [`omq_wire::render_answer`].
//!
//! `error` carries an [`ErrorCode`] like the server's error frame; an error
//! with a `shard` is a failed evaluation of that shard, an error without one
//! poisons the whole session (e.g. the setup did not parse).

use omq_data::Semantics;
use omq_wire::json::Json;
use omq_wire::{
    bool_field, decode_object, field, frame_payload, semantics_field, semantics_name, str_field,
    u64_field, violation, ErrorCode, ProtocolViolation,
};

/// Soft cap on the encoded bytes of the `rows` member of one `facts` frame;
/// the coordinator splits bigger shards across several frames.  Same budget
/// as the server's page cap, far under `MAX_FRAME_LEN`.
pub const MAX_SHIP_BYTES: usize = 1024 * 1024;

/// Soft cap on the encoded bytes of one `page` frame's answers, and the
/// default answer count per page.
pub const MAX_PAGE_BYTES: usize = 1024 * 1024;

/// Default number of answers per `page` frame.
pub const PAGE_ANSWERS: usize = 1024;

/// One fact as it travels: the relation name and the constant names.
pub type FactRow = (String, Vec<String>);

/// Frames the coordinator sends.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordFrame {
    /// The session preamble: ontology and query text plus the full schema
    /// (shards only carry a subset of the relations; the plan needs all).
    Setup {
        /// Ontology text, one TGD per line.
        ontology: String,
        /// Query text.
        query: String,
        /// `(name, arity)` for every relation of the coordinator's schema.
        relations: Vec<(String, u64)>,
    },
    /// A batch of fact rows for a shard; `last` marks the final batch.
    Facts {
        /// Shard id the rows belong to.
        shard: u64,
        /// The rows.
        rows: Vec<FactRow>,
        /// This is the shard's final batch — it can be built and run.
        last: bool,
    },
    /// Evaluate a fully shipped shard under `semantics`.
    Run {
        /// Shard id, previously completed by a `last` facts frame.
        shard: u64,
        /// The answer semantics to enumerate.
        semantics: Semantics,
    },
    /// End of session: no more shards will be assigned.
    Bye,
}

/// Frames a worker sends.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// Hello: sent once, immediately after connecting.
    Ready {
        /// The worker's index, as assigned at spawn time.
        worker: u64,
    },
    /// One page of rendered answers for a running shard.
    Page {
        /// Shard id the answers belong to.
        shard: u64,
        /// Rendered answers (see [`omq_wire::render_answer`]).
        answers: Vec<Vec<String>>,
        /// The shard is fully enumerated; its results may be committed.
        done: bool,
    },
    /// Something failed.  With a shard id: that evaluation failed (and the
    /// failure is deterministic — rerunning elsewhere would fail the same).
    /// Without: the session is poisoned (setup failure, protocol error).
    Error {
        /// The shard whose evaluation failed, if any.
        shard: Option<u64>,
        /// Coarse classification, shared with the serving protocol.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

fn rows_json(rows: &[FactRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|(rel, args)| {
                let mut row = Vec::with_capacity(1 + args.len());
                row.push(Json::str(rel.clone()));
                row.extend(args.iter().map(|a| Json::str(a.clone())));
                Json::Arr(row)
            })
            .collect(),
    )
}

fn parse_rows(doc: &Json) -> Result<Vec<FactRow>, ProtocolViolation> {
    let arr = field(doc, "rows")?
        .as_arr()
        .ok_or_else(|| violation("field `rows` must be an array"))?;
    arr.iter()
        .map(|row| {
            let row = row
                .as_arr()
                .ok_or_else(|| violation("each row must be an array"))?;
            let mut parts = row.iter().map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| violation("row entries must be strings"))
            });
            let rel = parts
                .next()
                .ok_or_else(|| violation("a row must name its relation"))??;
            let args = parts.collect::<Result<Vec<_>, _>>()?;
            Ok((rel, args))
        })
        .collect()
}

fn answers_json(answers: &[Vec<String>]) -> Json {
    Json::Arr(
        answers
            .iter()
            .map(|a| Json::Arr(a.iter().map(|v| Json::str(v.clone())).collect()))
            .collect(),
    )
}

fn parse_answers(doc: &Json) -> Result<Vec<Vec<String>>, ProtocolViolation> {
    let arr = field(doc, "answers")?
        .as_arr()
        .ok_or_else(|| violation("field `answers` must be an array"))?;
    arr.iter()
        .map(|answer| {
            answer
                .as_arr()
                .ok_or_else(|| violation("each answer must be an array"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| violation("answer values must be strings"))
                })
                .collect()
        })
        .collect()
}

impl CoordFrame {
    fn to_json(&self) -> Json {
        match self {
            CoordFrame::Setup {
                ontology,
                query,
                relations,
            } => Json::obj([
                ("t", Json::str("setup")),
                ("ontology", Json::str(ontology.clone())),
                ("query", Json::str(query.clone())),
                (
                    "relations",
                    Json::Arr(
                        relations
                            .iter()
                            .map(|(name, arity)| {
                                Json::Arr(vec![Json::str(name.clone()), Json::uint(*arity)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            CoordFrame::Facts { shard, rows, last } => Json::obj([
                ("t", Json::str("facts")),
                ("shard", Json::uint(*shard)),
                ("rows", rows_json(rows)),
                ("last", Json::Bool(*last)),
            ]),
            CoordFrame::Run { shard, semantics } => Json::obj([
                ("t", Json::str("run")),
                ("shard", Json::uint(*shard)),
                ("semantics", Json::str(semantics_name(*semantics))),
            ]),
            CoordFrame::Bye => Json::obj([("t", Json::str("bye"))]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<CoordFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        match str_field(&doc, "t")?.as_str() {
            "setup" => {
                let arr = field(&doc, "relations")?
                    .as_arr()
                    .ok_or_else(|| violation("field `relations` must be an array"))?;
                let relations = arr
                    .iter()
                    .map(|entry| {
                        let pair = entry.as_arr().ok_or_else(|| {
                            violation("each relation must be a [name, arity] pair")
                        })?;
                        match pair {
                            [name, arity] => Ok((
                                name.as_str()
                                    .ok_or_else(|| violation("relation name must be a string"))?
                                    .to_owned(),
                                arity.as_u64().ok_or_else(|| {
                                    violation("relation arity must be a non-negative integer")
                                })?,
                            )),
                            _ => Err(violation("each relation must be a [name, arity] pair")),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(CoordFrame::Setup {
                    ontology: str_field(&doc, "ontology")?,
                    query: str_field(&doc, "query")?,
                    relations,
                })
            }
            "facts" => Ok(CoordFrame::Facts {
                shard: u64_field(&doc, "shard")?,
                rows: parse_rows(&doc)?,
                last: bool_field(&doc, "last")?,
            }),
            "run" => Ok(CoordFrame::Run {
                shard: u64_field(&doc, "shard")?,
                semantics: semantics_field(&doc)?,
            }),
            "bye" => Ok(CoordFrame::Bye),
            other => Err(violation(format!("unknown coordinator frame `{other}`"))),
        }
    }
}

impl WorkerFrame {
    fn to_json(&self) -> Json {
        match self {
            WorkerFrame::Ready { worker } => {
                Json::obj([("t", Json::str("ready")), ("worker", Json::uint(*worker))])
            }
            WorkerFrame::Page {
                shard,
                answers,
                done,
            } => Json::obj([
                ("t", Json::str("page")),
                ("shard", Json::uint(*shard)),
                ("answers", answers_json(answers)),
                ("done", Json::Bool(*done)),
            ]),
            WorkerFrame::Error {
                shard,
                code,
                message,
            } => Json::obj([
                ("t", Json::str("error")),
                (
                    "shard",
                    match shard {
                        Some(s) => Json::uint(*s),
                        None => Json::Null,
                    },
                ),
                ("code", Json::uint(code.as_u16() as u64)),
                ("message", Json::str(message.clone())),
            ]),
        }
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        frame_payload(self.to_json().to_json().as_bytes())
    }

    /// Decodes a frame payload (no length prefix).
    pub fn decode(payload: &[u8]) -> Result<WorkerFrame, ProtocolViolation> {
        let doc = decode_object(payload)?;
        match str_field(&doc, "t")?.as_str() {
            "ready" => Ok(WorkerFrame::Ready {
                worker: u64_field(&doc, "worker")?,
            }),
            "page" => Ok(WorkerFrame::Page {
                shard: u64_field(&doc, "shard")?,
                answers: parse_answers(&doc)?,
                done: bool_field(&doc, "done")?,
            }),
            "error" => {
                let raw = u64_field(&doc, "code")?;
                let code = u16::try_from(raw)
                    .ok()
                    .and_then(ErrorCode::from_u16)
                    .ok_or_else(|| violation(format!("unknown error code {raw}")))?;
                Ok(WorkerFrame::Error {
                    shard: omq_wire::opt_u64_field(&doc, "shard")?,
                    code,
                    message: str_field(&doc, "message")?,
                })
            }
            other => Err(violation(format!("unknown worker frame `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_wire::FrameDecoder;

    #[test]
    fn frames_round_trip_through_the_shared_codec() {
        let coord = [
            CoordFrame::Setup {
                ontology: "R(x) -> exists y. S(x, y)".to_owned(),
                query: "q(x) :- S(x, y)".to_owned(),
                relations: vec![("R".to_owned(), 1), ("S".to_owned(), 2)],
            },
            CoordFrame::Facts {
                shard: 3,
                rows: vec![
                    ("R".to_owned(), vec!["ada".to_owned()]),
                    ("S".to_owned(), vec!["ada".to_owned(), "lab\"1".to_owned()]),
                ],
                last: true,
            },
            CoordFrame::Run {
                shard: 3,
                semantics: Semantics::MinimalPartialMulti,
            },
            CoordFrame::Bye,
        ];
        let mut decoder = FrameDecoder::new();
        decoder.feed(&coord.iter().flat_map(|f| f.encode()).collect::<Vec<_>>());
        let mut got = Vec::new();
        while let Some(payload) = decoder.next_frame().unwrap() {
            got.push(CoordFrame::decode(&payload).unwrap());
        }
        assert_eq!(got, coord);

        let worker = [
            WorkerFrame::Ready { worker: 2 },
            WorkerFrame::Page {
                shard: 3,
                answers: vec![vec!["ada".to_owned(), "*".to_owned()], vec![]],
                done: false,
            },
            WorkerFrame::Error {
                shard: Some(3),
                code: ErrorCode::BadQuery,
                message: "not free-connex".to_owned(),
            },
            WorkerFrame::Error {
                shard: None,
                code: ErrorCode::Internal,
                message: String::new(),
            },
        ];
        let mut decoder = FrameDecoder::new();
        decoder.feed(&worker.iter().flat_map(|f| f.encode()).collect::<Vec<_>>());
        let mut got = Vec::new();
        while let Some(payload) = decoder.next_frame().unwrap() {
            got.push(WorkerFrame::decode(&payload).unwrap());
        }
        assert_eq!(got, worker);
    }

    #[test]
    fn malformed_payloads_report_but_do_not_panic() {
        for payload in [
            &b"{}"[..],
            br#"{"t":"setup","ontology":"x"}"#,
            br#"{"t":"facts","shard":1,"rows":[[1]],"last":true}"#,
            br#"{"t":"facts","shard":1,"rows":[[]],"last":true}"#,
            br#"{"t":"run","shard":0,"semantics":"certain"}"#,
            br#"{"t":"page","shard":0,"answers":[["a"],3],"done":false}"#,
            br#"{"t":"error","shard":null,"code":999,"message":""}"#,
            br#"{"t":"warp"}"#,
            b"\xff\xfe",
        ] {
            assert!(CoordFrame::decode(payload).is_err() || WorkerFrame::decode(payload).is_err());
        }
        // An empty rows batch is legal (a shard can be empty).
        let empty = CoordFrame::Facts {
            shard: 0,
            rows: Vec::new(),
            last: true,
        };
        let payload = &empty.encode()[4..];
        assert_eq!(CoordFrame::decode(payload).unwrap(), empty);
    }
}
