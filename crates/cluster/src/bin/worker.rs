//! Standalone cluster worker: dials the coordinator named by
//! `OMQ_CLUSTER_WORKER_ADDR` and serves shards until dismissed.
//!
//! The coordinator spawns this binary once per worker when configured with
//! `WorkerSpawn::Command`; all parameters (address, worker index, fault
//! injection for tests) arrive through the environment, so there is no
//! argument parsing here.

fn main() {
    if !omq_cluster::maybe_run_worker() {
        eprintln!(
            "omq-cluster-worker: not spawned by a coordinator ({} is unset)",
            omq_cluster::worker::WORKER_ADDR_ENV
        );
        std::process::exit(2);
    }
}
