//! The coordinator: shard shipping, work-stealing placement, and the
//! distributed cross-shard reduce.
//!
//! [`execute`] turns one query over one database into a fleet-wide run:
//!
//! 1. **Shard.** The database splits by Gaifman component
//!    (`Database::try_shard_into`), over-partitioned into roughly
//!    `workers × shard_factor` bins so the placement below has slack to
//!    balance skew.  The soundness argument is `omq-core`'s (components never
//!    interact under a guarded chase, connected queries never join across
//!    them); a disconnected query or a single-component database degrades to
//!    one shard on one worker.
//! 2. **Ship.** Each shard is exported as named fact rows
//!    (`Database::export_fact_rows` — names survive re-interning, ids do
//!    not) and sent over the wire in byte-bounded `facts` batches.
//! 3. **Place by stealing.** Shards sit in one queue, handed out largest
//!    first.  Every worker's connection pump takes the next shard the
//!    moment its worker goes idle — fast workers drain the queue while a
//!    worker stuck on the big shard holds only that.  Takes beyond a
//!    worker's first are counted as steals in [`ClusterStats`].
//! 4. **Reduce.** Worker pages are parsed back into typed answers against
//!    the coordinator's interner and buffered per shard; a shard **commits**
//!    when its `done` page arrives.  The committed buffers feed
//!    [`AnswerStream::from_remote`], which runs the same cross-shard
//!    wildcard-minimality merge and Boolean dedup as the in-process parallel
//!    path — callers drain a perfectly ordinary [`AnswerStream`].
//!
//! # Fault handling
//!
//! Shard results are delivered **exactly once**: pages buffer until the
//! shard's `done` marker and only then commit.  If a worker's connection
//! dies (EOF, I/O error, read timeout) its uncommitted shard is thrown away
//! and requeued for the surviving workers — enumeration is deterministic, so
//! the replacement run reproduces exactly the answers the discarded partial
//! buffer held.  An idle pump therefore parks instead of dismissing its
//! worker while any shard is still unfinished elsewhere: it may yet have to
//! adopt a dead peer's work.  A worker-*reported* evaluation error is
//! deterministic by contract and aborts the run instead of retrying.  When
//! the last worker dies with shards outstanding, the stream ends with an
//! error.

use crate::messages::{CoordFrame, FactRow, WorkerFrame, MAX_SHIP_BYTES};
use crate::worker::{
    run_worker, WorkerFault, WORKER_ADDR_ENV, WORKER_DIE_ENV, WORKER_INDEX_ENV, WORKER_PAGE_ENV,
};
use crate::ClusterError;
use omq_core::remote::RemoteShard;
use omq_core::{AnswerStream, CoreError, QueryPlan};
use omq_data::{Answer, Database, Semantics};
use omq_wire::{parse_answer, FrameDecoder};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the coordinator obtains its worker fleet.
#[derive(Debug, Clone)]
pub enum WorkerSpawn {
    /// Spawn `program args…` once per worker, with the coordinator address,
    /// the worker index (and any fault injection) passed through the
    /// `OMQ_CLUSTER_*` environment.  The program must enter the worker loop
    /// — the `omq-cluster-worker` binary does, and any binary calling
    /// [`crate::maybe_run_worker`] first thing in `main` can serve as its
    /// own fleet.
    Command {
        /// The executable to spawn.
        program: PathBuf,
        /// Arguments passed verbatim.
        args: Vec<String>,
    },
    /// Run each worker on a thread of this process, still over real TCP
    /// loopback connections.  Same wire, no process isolation — the default,
    /// and what unit tests use; integration tests and the benchmark run
    /// real processes via `Command`.
    InProcess,
}

/// Kill one worker after it has sent a number of pages — fault injection
/// for the reassignment tests and the E20 fault row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Index of the worker to kill.
    pub worker: usize,
    /// The worker drops its connection after sending this many pages.
    pub after_pages: u32,
}

/// Configuration for one distributed run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of workers to spawn.
    pub workers: usize,
    /// Over-partitioning factor: the database is split into up to
    /// `workers × shard_factor` shards so the work-stealing queue can
    /// balance uneven components.
    pub shard_factor: usize,
    /// Read timeout on worker connections; a worker silent for this long is
    /// treated as dead and its shard is reassigned.
    pub worker_timeout: Duration,
    /// How workers are obtained.
    pub spawn: WorkerSpawn,
    /// Optional fault injection (see [`Kill`]).
    pub kill: Option<Kill>,
    /// Override the workers' answers-per-page cap (`None`: the worker
    /// default).  Tests set `1` so shards span several pages and a killed
    /// worker dies mid-shard deterministically.
    pub page_answers: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            shard_factor: 4,
            worker_timeout: Duration::from_secs(30),
            spawn: WorkerSpawn::InProcess,
            kill: None,
            page_answers: None,
        }
    }
}

/// Counters for one distributed run, filled in as the pumps work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Number of shards the database was split into.
    pub shards: usize,
    /// Workers that connected.
    pub workers: usize,
    /// Total encoded bytes of `facts` frames shipped (including reships
    /// after a reassignment).
    pub shipped_bytes: usize,
    /// Total fact rows shipped.
    pub shipped_facts: usize,
    /// Shard assignments beyond each worker's first — queue takes by
    /// already-warm workers.
    pub steals: usize,
    /// Shards thrown away and requeued after their worker died.
    pub reassignments: usize,
    /// Worker connections that died mid-session.
    pub worker_failures: usize,
    /// Answer pages received and committed.
    pub pages: usize,
}

/// A shard waiting in the queue (or in flight on exactly one pump).
struct ShardWork {
    id: usize,
    rows: Vec<FactRow>,
}

/// Lifecycle of one shard.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ShardState {
    /// Queued or in flight; may still be reassigned.
    Pending,
    /// Its `done` page arrived; its buffer is final.
    Done,
}

/// The shared coordinator state: the work queue, per-shard committed answer
/// buffers, and the run's health.  One mutex — contention is per shard and
/// per page, not per answer.
struct Exchange {
    /// Pending shards, kept sorted ascending by size so `pop()` yields the
    /// largest remaining — longest-processing-time placement.
    queue: Vec<ShardWork>,
    states: Vec<ShardState>,
    /// Committed answers per shard (typed, coordinator interner).
    buffers: Vec<Vec<Answer>>,
    /// Workers still pumping.
    live_workers: usize,
    /// Fatal run error: worker-reported evaluation failure, protocol
    /// violation, or fleet death.  Ends the answer stream.
    failed: Option<CoreError>,
    stats: ClusterStats,
}

impl Exchange {
    fn queue_push(&mut self, work: ShardWork) {
        let pos = self
            .queue
            .partition_point(|w| w.rows.len() < work.rows.len());
        self.queue.insert(pos, work);
    }

    fn unfinished(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s == ShardState::Pending)
            .count()
    }

    fn fail(&mut self, error: CoreError) {
        if self.failed.is_none() {
            self.failed = Some(error);
        }
    }
}

struct Shared {
    mx: Mutex<Exchange>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Exchange> {
        self.mx.lock().expect("exchange poisoned")
    }
}

/// One shard's answers, pulled from the exchange as they commit: the
/// [`RemoteShard`] implementation behind the coordinator's answer stream.
struct ShardSource {
    shard: usize,
    read: usize,
    error: Option<CoreError>,
    shared: Arc<Shared>,
}

impl RemoteShard for ShardSource {
    fn next_batch(&mut self, out: &mut Vec<Answer>, k: usize) -> usize {
        if self.error.is_some() {
            return 0;
        }
        let mut ex = self.shared.lock();
        loop {
            if let Some(e) = &ex.failed {
                self.error = Some(e.clone());
                return 0;
            }
            if ex.states[self.shard] == ShardState::Done {
                let buffer = &ex.buffers[self.shard];
                let n = k.min(buffer.len() - self.read);
                out.extend_from_slice(&buffer[self.read..self.read + n]);
                self.read += n;
                return n;
            }
            ex = self.shared.cv.wait(ex).expect("exchange poisoned");
        }
    }

    fn error(&mut self) -> Option<CoreError> {
        self.error.take()
    }
}

/// A handle over the run's background machinery: pump threads, spawned
/// worker processes/threads, and the shared stats.
pub struct ClusterHandle {
    shared: Arc<Shared>,
    pumps: Vec<std::thread::JoinHandle<()>>,
    children: Vec<std::process::Child>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ClusterHandle {
    /// Waits for every pump and worker to finish and returns the run's
    /// final statistics.  Call after draining the stream — the pumps only
    /// exit once every shard is settled (or the run failed).
    pub fn finish(mut self) -> ClusterStats {
        for pump in self.pumps.drain(..) {
            let _ = pump.join();
        }
        for mut child in self.children.drain(..) {
            let _ = child.wait();
        }
        for thread in self.worker_threads.drain(..) {
            let _ = thread.join();
        }
        self.shared.lock().stats
    }

    /// A snapshot of the statistics so far (the run may still be moving).
    pub fn stats(&self) -> ClusterStats {
        self.shared.lock().stats
    }
}

/// A running distributed execution: the answer stream plus the handle to
/// join the machinery and collect [`ClusterStats`].
pub struct ClusterRun {
    /// The merged answer stream — a perfectly ordinary [`AnswerStream`];
    /// errors (including fleet death) surface through `AnswerStream::error`
    /// exactly like local enumeration failures.
    pub stream: AnswerStream,
    /// Join handle and statistics for the run's machinery.
    pub handle: ClusterHandle,
}

/// Executes `query` under `ontology` over `db` with `semantics`, distributed
/// across `config.workers` worker processes (or threads).  Returns the
/// merged answer stream and the run handle; see the [module docs](self) for
/// the execution shape.
pub fn execute(
    ontology: &str,
    query: &str,
    db: &Database,
    semantics: Semantics,
    config: &ClusterConfig,
) -> Result<ClusterRun, ClusterError> {
    // Compile locally first: validates the input on the coordinator (fail
    // fast, before any process is spawned) and supplies the arity and the
    // tractability gate for the merged stream.
    let parsed_ontology = omq_chase::Ontology::parse(ontology)?;
    let parsed_query = omq_cq::ConjunctiveQuery::parse(query)?;
    let omq = omq_chase::OntologyMediatedQuery::new(parsed_ontology, parsed_query)?;
    let plan = QueryPlan::compile(&omq)?;

    // Shard by Gaifman component, with the same connectivity gate as
    // `execute_parallel`: a disconnected query joins across components and
    // must run as one shard.
    let workers = config.workers.max(1);
    let shard_dbs: Vec<Database> = if workers > 1 && omq.query().is_connected() {
        match db.try_shard_into(workers * config.shard_factor.max(1)) {
            Some(shards) => shards,
            None => vec![db.clone()],
        }
    } else {
        vec![db.clone()]
    };
    let mut works: Vec<ShardWork> = shard_dbs
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            Ok(ShardWork {
                id,
                rows: shard.export_fact_rows()?,
            })
        })
        .collect::<Result<_, omq_data::DataError>>()?;
    let shards = works.len();
    // Ascending by size: `pop()` hands out the largest remaining shard.
    works.sort_by_key(|w| w.rows.len());

    let relations: Vec<(String, u64)> = db
        .schema()
        .iter()
        .map(|(_, rel)| (rel.name.clone(), rel.arity as u64))
        .collect();

    let shared = Arc::new(Shared {
        mx: Mutex::new(Exchange {
            queue: works,
            states: vec![ShardState::Pending; shards],
            buffers: (0..shards).map(|_| Vec::new()).collect(),
            // Count the whole *intended* fleet up front, not per accepted
            // connection: a fast worker can connect, run and die before its
            // slower peers are even accepted, and the fleet-death check must
            // not mistake that moment for everyone being gone.  Workers that
            // never connect are reconciled after the accept deadline.
            live_workers: workers,
            failed: None,
            stats: ClusterStats {
                shards,
                ..ClusterStats::default()
            },
        }),
        cv: Condvar::new(),
    });

    // Bind first, spawn second: workers dial us.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let mut children = Vec::new();
    let mut worker_threads = Vec::new();
    for index in 0..workers {
        let fault = WorkerFault {
            die_after_pages: match config.kill {
                Some(kill) if kill.worker == index => Some(kill.after_pages),
                _ => None,
            },
            page_answers: config.page_answers,
        };
        match &config.spawn {
            WorkerSpawn::Command { program, args } => {
                let mut cmd = std::process::Command::new(program);
                cmd.args(args)
                    .env(WORKER_ADDR_ENV, &addr)
                    .env(WORKER_INDEX_ENV, index.to_string())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null());
                if let Some(pages) = fault.die_after_pages {
                    cmd.env(WORKER_DIE_ENV, pages.to_string());
                }
                if let Some(n) = fault.page_answers {
                    cmd.env(WORKER_PAGE_ENV, n.to_string());
                }
                children.push(cmd.spawn()?);
            }
            WorkerSpawn::InProcess => {
                let addr = addr.clone();
                worker_threads.push(std::thread::spawn(move || {
                    let _ = run_worker(&addr, index as u64, fault);
                }));
            }
        }
    }

    // Accept the fleet (bounded wait — a worker that fails to come up must
    // not hang the run) and start one pump per connection.
    let setup = CoordFrame::Setup {
        ontology: ontology.to_owned(),
        query: query.to_owned(),
        relations,
    }
    .encode();
    let db = Arc::new(db.clone());
    let mut pumps = Vec::new();
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + config.worker_timeout;
    while pumps.len() < workers && Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(config.worker_timeout))?;
                let pump = Pump {
                    stream,
                    decoder: FrameDecoder::new(),
                    shared: Arc::clone(&shared),
                    db: Arc::clone(&db),
                    semantics,
                    setup: setup.clone(),
                };
                pumps.push(std::thread::spawn(move || pump.run()));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e.into()),
        }
    }
    if pumps.is_empty() {
        return Err(ClusterError::NoWorkers(format!(
            "no worker connected within {:?}",
            config.worker_timeout
        )));
    }
    // Reconcile no-shows: workers that never connected were counted into
    // `live_workers` up front and will never decrement it themselves.  If
    // every worker that *did* connect has also already died, that is fleet
    // death — fail the run now instead of letting the sources wait forever.
    {
        let mut ex = shared.lock();
        ex.stats.workers = pumps.len();
        ex.live_workers -= workers - pumps.len();
        if ex.live_workers == 0 && ex.unfinished() > 0 {
            let outstanding = ex.unfinished();
            ex.fail(CoreError::Internal(format!(
                "all cluster workers died with {outstanding} shard(s) outstanding"
            )));
        }
    }
    shared.cv.notify_all();

    // The merged stream: one remote source per shard, in shard-id order,
    // reduced by the engine's own cross-shard machinery.
    let sources: Vec<Box<dyn RemoteShard>> = (0..shards)
        .map(|shard| {
            Box::new(ShardSource {
                shard,
                read: 0,
                error: None,
                shared: Arc::clone(&shared),
            }) as Box<dyn RemoteShard>
        })
        .collect();
    let stream = AnswerStream::from_remote(&plan, semantics, sources)?;
    Ok(ClusterRun {
        stream,
        handle: ClusterHandle {
            shared,
            pumps,
            children,
            worker_threads,
        },
    })
}

/// One worker connection's pump: the thread that feeds its worker shards
/// and folds the answer pages back into the exchange.
struct Pump {
    stream: TcpStream,
    decoder: FrameDecoder,
    shared: Arc<Shared>,
    db: Arc<Database>,
    semantics: Semantics,
    setup: Vec<u8>,
}

/// Outcome of running one shard on the pump's worker.
enum ShardOutcome {
    /// The shard's answers are committed in the exchange.
    Committed,
    /// The connection died mid-shard; the caller requeues the work.
    ConnectionDead,
    /// The run failed fatally (worker-reported error or protocol
    /// violation); `Exchange::failed` is set.
    RunFailed,
}

impl Pump {
    fn run(mut self) {
        let died_with = self.session();
        let mut ex = self.shared.lock();
        ex.live_workers -= 1;
        if let Err(in_flight) = died_with {
            ex.stats.worker_failures += 1;
            if let Some(work) = in_flight {
                // The shard's partial pages were never committed; requeue it
                // for the survivors.  Deterministic enumeration makes the
                // replay produce exactly the discarded prefix again.
                ex.stats.reassignments += 1;
                ex.queue_push(work);
            }
            if ex.live_workers == 0 && ex.unfinished() > 0 {
                let outstanding = ex.unfinished();
                ex.fail(CoreError::Internal(format!(
                    "all cluster workers died with {outstanding} shard(s) outstanding"
                )));
            }
        }
        drop(ex);
        self.shared.cv.notify_all();
    }

    /// Serves the whole session.  `Ok(())` is an orderly end (queue drained
    /// or run failed elsewhere); `Err(in_flight)` means the connection died,
    /// possibly holding an uncommitted shard.
    fn session(&mut self) -> Result<(), Option<ShardWork>> {
        match self.read_worker_frame() {
            Some(WorkerFrame::Ready { .. }) => {}
            _ => return Err(None),
        }
        if self.stream.write_all(&self.setup).is_err() {
            return Err(None);
        }
        let mut assignments = 0usize;
        loop {
            // Take the next shard — or park: an idle pump must outlive its
            // peers' in-flight shards, which may yet be reassigned to it.
            let work = {
                let mut ex = self.shared.lock();
                loop {
                    if ex.failed.is_some() {
                        break None;
                    }
                    if let Some(work) = ex.queue.pop() {
                        break Some(work);
                    }
                    if ex.unfinished() == 0 {
                        break None;
                    }
                    ex = self.shared.cv.wait(ex).expect("exchange poisoned");
                }
            };
            let Some(work) = work else {
                // All settled: dismiss the worker (best effort) and stop.
                let _ = self.stream.write_all(&CoordFrame::Bye.encode());
                return Ok(());
            };
            assignments += 1;
            if assignments > 1 {
                self.shared.lock().stats.steals += 1;
            }
            match self.run_shard(&work) {
                ShardOutcome::Committed => {}
                ShardOutcome::ConnectionDead => return Err(Some(work)),
                ShardOutcome::RunFailed => {
                    let _ = self.stream.write_all(&CoordFrame::Bye.encode());
                    return Ok(());
                }
            }
        }
    }

    /// Ships one shard, starts it, and folds its pages into the exchange.
    fn run_shard(&mut self, work: &ShardWork) -> ShardOutcome {
        // Ship the rows in byte-bounded batches.  The estimate errs low on
        // heavily escaped names, which is fine: the budget sits at an eighth
        // of the frame cap.
        let mut shipped_bytes = 0usize;
        let mut start = 0usize;
        loop {
            let mut bytes = 0usize;
            let mut end = start;
            while end < work.rows.len() && (end == start || bytes < MAX_SHIP_BYTES) {
                let (rel, args) = &work.rows[end];
                bytes += 6 + rel.len() + args.iter().map(|a| a.len() + 3).sum::<usize>();
                end += 1;
            }
            let frame = CoordFrame::Facts {
                shard: work.id as u64,
                rows: work.rows[start..end].to_vec(),
                last: end == work.rows.len(),
            }
            .encode();
            shipped_bytes += frame.len();
            if self.stream.write_all(&frame).is_err() {
                return ShardOutcome::ConnectionDead;
            }
            start = end;
            if start == work.rows.len() {
                break;
            }
        }
        {
            let mut ex = self.shared.lock();
            ex.stats.shipped_bytes += shipped_bytes;
            ex.stats.shipped_facts += work.rows.len();
        }
        let run = CoordFrame::Run {
            shard: work.id as u64,
            semantics: self.semantics,
        }
        .encode();
        if self.stream.write_all(&run).is_err() {
            return ShardOutcome::ConnectionDead;
        }

        // Collect pages until the done marker, then commit atomically.
        let mut buffer: Vec<Answer> = Vec::new();
        let mut pages = 0usize;
        loop {
            match self.read_worker_frame() {
                Some(WorkerFrame::Page {
                    shard,
                    answers,
                    done,
                }) if shard == work.id as u64 => {
                    for rendered in &answers {
                        match parse_answer(rendered, self.semantics, &self.db) {
                            Ok(answer) => buffer.push(answer),
                            Err(v) => {
                                return self.fail_run(CoreError::Internal(format!(
                                    "cluster worker page violated the protocol: {v}"
                                )));
                            }
                        }
                    }
                    pages += 1;
                    if done {
                        let mut ex = self.shared.lock();
                        ex.states[work.id] = ShardState::Done;
                        ex.buffers[work.id] = buffer;
                        ex.stats.pages += pages;
                        drop(ex);
                        self.shared.cv.notify_all();
                        return ShardOutcome::Committed;
                    }
                }
                Some(WorkerFrame::Error {
                    shard,
                    code,
                    message,
                }) => {
                    // Deterministic failure: retrying on another worker
                    // would fail identically.  Abort the run.
                    let scope = match shard {
                        Some(s) => format!("shard {s}"),
                        None => "session".to_owned(),
                    };
                    return self.fail_run(CoreError::Internal(format!(
                        "cluster worker failed ({scope}, {code}): {message}"
                    )));
                }
                Some(_) => {
                    return self.fail_run(CoreError::Internal(
                        "cluster worker broke the page protocol".to_owned(),
                    ));
                }
                None => return ShardOutcome::ConnectionDead,
            }
        }
    }

    fn fail_run(&self, error: CoreError) -> ShardOutcome {
        self.shared.lock().fail(error);
        self.shared.cv.notify_all();
        ShardOutcome::RunFailed
    }

    /// Blocks for the next worker frame; `None` folds together every way a
    /// connection can die — EOF, I/O error, read timeout, undecodable frame.
    fn read_worker_frame(&mut self) -> Option<WorkerFrame> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => return WorkerFrame::decode(&payload).ok(),
                Ok(None) => {}
                Err(_) => return None,
            }
            match self.stream.read(&mut buf) {
                Ok(0) | Err(_) => return None,
                Ok(n) => self.decoder.feed(&buf[..n]),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omq_chase::{Ontology, OntologyMediatedQuery};
    use omq_cq::ConjunctiveQuery;
    use omq_wire::render_answer;
    use std::collections::BTreeMap;

    const ONTOLOGY: &str = "Researcher(x) -> exists y. HasOffice(x, y)\n\
                            HasOffice(x, y) -> Office(y)\n\
                            Office(x) -> exists y. InBuilding(x, y)";
    const QUERY: &str = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";
    const BUILDING_QUERY: &str = "q(x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";

    /// `islands` disjoint researcher/office/building wirings, two answers
    /// each, so every Gaifman component yields work and every shard spans
    /// at least two pages when `page_answers == 1`.
    fn island_db(islands: usize) -> Database {
        let omq = omq(QUERY);
        let mut builder = Database::builder(omq.data_schema().clone());
        for i in 0..islands {
            builder = builder
                .fact("Researcher", [format!("p{i}")])
                .fact("HasOffice", [format!("p{i}"), format!("oa{i}")])
                .fact("HasOffice", [format!("p{i}"), format!("ob{i}")])
                .fact("InBuilding", [format!("oa{i}"), format!("b{i}")])
                .fact("InBuilding", [format!("ob{i}"), format!("b{i}")]);
        }
        builder.build().unwrap()
    }

    fn omq(query: &str) -> OntologyMediatedQuery {
        let ontology = Ontology::parse(ONTOLOGY).unwrap();
        let query = ConjunctiveQuery::parse(query).unwrap();
        OntologyMediatedQuery::new(ontology, query).unwrap()
    }

    /// Local (single-process) answer multiset, rendered by constant name.
    fn local_answers(query: &str, db: &Database, semantics: Semantics) -> BTreeMap<String, usize> {
        let plan = QueryPlan::compile(&omq(query)).unwrap();
        let mut stream = plan.execute(db).unwrap().answers(semantics).unwrap();
        let mut counts = BTreeMap::new();
        for answer in &mut stream {
            *counts
                .entry(render_answer(&answer, db).join(","))
                .or_default() += 1;
        }
        assert!(stream.error().is_none());
        counts
    }

    fn cluster_answers(
        query: &str,
        db: &Database,
        semantics: Semantics,
        config: &ClusterConfig,
    ) -> (BTreeMap<String, usize>, ClusterStats) {
        let run = execute(ONTOLOGY, query, db, semantics, config).unwrap();
        let mut stream = run.stream;
        let mut counts = BTreeMap::new();
        for answer in &mut stream {
            *counts
                .entry(render_answer(&answer, db).join(","))
                .or_default() += 1;
        }
        assert!(
            stream.error().is_none(),
            "stream failed: {:?}",
            stream.error()
        );
        (counts, run.handle.finish())
    }

    fn fast_config() -> ClusterConfig {
        ClusterConfig {
            worker_timeout: Duration::from_secs(5),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn in_process_cluster_matches_local_execution() {
        let db = island_db(6);
        for semantics in [
            Semantics::Complete,
            Semantics::MinimalPartial,
            Semantics::MinimalPartialMulti,
        ] {
            for (query, workers) in [(QUERY, 2), (QUERY, 3), (BUILDING_QUERY, 2)] {
                let config = ClusterConfig {
                    workers,
                    ..fast_config()
                };
                let (got, stats) = cluster_answers(query, &db, semantics, &config);
                assert_eq!(got, local_answers(query, &db, semantics));
                assert_eq!(stats.workers, workers);
                assert!(stats.shards > 1, "expected sharding, got {stats:?}");
                assert_eq!(stats.worker_failures, 0);
                assert!(stats.shipped_facts >= db.len());
            }
        }
    }

    #[test]
    fn single_worker_and_disconnected_queries_run_unsharded() {
        let db = island_db(3);
        // One worker: no point sharding for placement, but the run must
        // still go over the wire and come back equal.
        let config = ClusterConfig {
            workers: 1,
            ..fast_config()
        };
        let (got, stats) = cluster_answers(QUERY, &db, Semantics::Complete, &config);
        assert_eq!(got, local_answers(QUERY, &db, Semantics::Complete));
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn killed_worker_shards_are_reassigned_and_answers_survive() {
        let db = island_db(8);
        let config = ClusterConfig {
            workers: 2,
            // One answer per page: worker 0 dies after its first answer,
            // mid-shard (every island yields two), forcing a reassignment.
            page_answers: Some(1),
            kill: Some(Kill {
                worker: 0,
                after_pages: 1,
            }),
            ..fast_config()
        };
        let (got, stats) = cluster_answers(QUERY, &db, Semantics::Complete, &config);
        assert_eq!(got, local_answers(QUERY, &db, Semantics::Complete));
        assert_eq!(stats.worker_failures, 1, "stats: {stats:?}");
        assert_eq!(stats.reassignments, 1, "stats: {stats:?}");
    }

    #[test]
    fn fleet_death_fails_the_stream_instead_of_hanging() {
        let db = island_db(8);
        let config = ClusterConfig {
            workers: 1,
            page_answers: Some(1),
            kill: Some(Kill {
                worker: 0,
                after_pages: 1,
            }),
            ..fast_config()
        };
        let run = execute(ONTOLOGY, QUERY, &db, Semantics::Complete, &config).unwrap();
        let mut stream = run.stream;
        let drained: Vec<Answer> = (&mut stream).collect();
        let error = stream
            .error()
            .expect("fleet death must surface as a stream error");
        assert!(error.to_string().contains("workers died"), "got: {error}");
        // At most the one committed page's worth of answers leaked out —
        // and whatever did drain parsed cleanly.
        drop(drained);
        let stats = run.handle.finish();
        assert_eq!(stats.worker_failures, 1);
    }

    #[test]
    fn bad_query_fails_on_the_coordinator_before_spawning() {
        let db = island_db(1);
        let err = execute(
            ONTOLOGY,
            "q(x :- Nope(x)",
            &db,
            Semantics::Complete,
            &fast_config(),
        )
        .err()
        .expect("an unparsable query must be rejected");
        assert!(err.wire_code().is_client_error(), "got: {err}");
    }
}
