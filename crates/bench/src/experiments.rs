//! The experiment suite (E1–E20) and its table output.
//!
//! Every experiment returns a [`Table`]; the harness binary prints them,
//! writes the machine-readable `BENCH_<exp>.json` counterparts (see
//! [`crate::report`]), and `EXPERIMENTS.md` records a reference run together
//! with the paper claim the experiment validates.
//!
//! The deprecated `enumerate_*`/`stream_*` engine wrappers are used
//! deliberately in the older experiments: they time the legacy callback path
//! next to the cursor path (E12/E14 report the iterator metric).
#![allow(deprecated)]

use crate::generators::{
    clustered_university, random_bipartite_graph, random_graph, sparse_boolean_matrix, university,
    ClusteredConfig, UniversityConfig,
};
use crate::measure::{
    linear_fit, measure_drain, measure_iterator, measure_stream, measure_take_k, DelayStats,
};
use crate::reductions;
use omq_chase::{ChaseConfig, FactArena, QchaseConfig};
use omq_core::{
    baseline::BruteForce, Answer, EngineConfig, OmqEngine, PartialEnumerator, QueryPlan, Semantics,
};
use omq_cq::acyclicity::AcyclicityReport;
use omq_cq::ConjunctiveQuery;
use std::time::Instant;

/// A printable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment identifier, e.g. `"E3"`.
    pub id: String,
    /// Human-readable title (the paper artefact it validates).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Summary scalars exported to the JSON report (name → value).
    pub metrics: Vec<(String, f64)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Records a summary scalar for the JSON report.
    pub fn push_metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_owned(), value));
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

fn university_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![250, 500, 1_000, 2_000]
    } else {
        vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000]
    }
}

fn delay_row(size: usize, facts: usize, stats: &DelayStats) -> Vec<String> {
    vec![
        size.to_string(),
        facts.to_string(),
        format!("{}", stats.preprocess_micros),
        stats.answers.to_string(),
        format!("{}", stats.enumeration_micros),
        format!("{}", stats.mean_delay_nanos),
        format!("{}", stats.p99_delay_nanos),
        format!("{}", stats.max_delay_nanos),
    ]
}

/// E1 — Figure 1: classification of the example queries with respect to the
/// acyclicity notions.
pub fn e1_figure1() -> Table {
    let queries: Vec<(&str, &str)> = vec![
        ("full path", "q(x, y, z) :- R(x, y), S(y, z)"),
        ("projected path", "q(x, z) :- R(x, y), S(y, z)"),
        ("answer triangle", "q(x, y, z) :- R(x, y), S(y, z), T(z, x)"),
        (
            "triangle + pendant path",
            "q(x, y, z) :- R(x, y), S(y, z), T(z, x), U(x, u), V(u, w), W(w, y)",
        ),
        ("quantified triangle", "q() :- R(x, y), S(y, z), T(z, x)"),
    ];
    let mut table = Table::new(
        "E1",
        "Figure 1 — acyclic (ac), free-connex acyclic (fc), weakly acyclic (wac)",
        &["query", "ac", "fc", "wac", "enumeration tractable"],
    );
    for (name, text) in queries {
        let q = ConjunctiveQuery::parse(text).expect("static query");
        let report = AcyclicityReport::classify(&q);
        table.push_row(vec![
            name.to_owned(),
            report.acyclic.to_string(),
            report.free_connex_acyclic.to_string(),
            report.weakly_acyclic.to_string(),
            report.enumeration_tractable().to_string(),
        ]);
    }
    table
}

/// E2 — Proposition 3.3 / Theorem 3.1: the query-directed chase and
/// single-testing scale linearly with the database.
pub fn e2_qchase_scaling(quick: bool) -> Table {
    let mut table = Table::new(
        "E2",
        "Query-directed chase: preprocessing time vs database size (expected: linear)",
        &[
            "researchers",
            "|D| facts",
            "chase µs",
            "chased facts",
            "memo hits",
            "single-test µs",
        ],
    );
    let mut sizes = Vec::new();
    let mut times = Vec::new();
    for researchers in university_sizes(quick) {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let start = Instant::now();
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let chase_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let _ = engine
            .test_complete_names(&["person0", "office0", "building0"])
            .expect("arity matches");
        let test_micros = start.elapsed().as_micros();
        sizes.push(db.len() as f64);
        times.push(chase_micros as f64);
        table.push_row(vec![
            researchers.to_string(),
            db.len().to_string(),
            chase_micros.to_string(),
            engine.stats().chased_facts.to_string(),
            engine.stats().memo_hits.to_string(),
            test_micros.to_string(),
        ]);
    }
    let (slope, r2) = linear_fit(&sizes, &times);
    table.push_row(vec![
        "linear fit".to_owned(),
        String::new(),
        format!("{slope:.2} µs/fact, R²={r2:.4}"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    table
}

fn enumeration_headers() -> [&'static str; 8] {
    [
        "researchers",
        "|D| facts",
        "preprocess µs",
        "answers",
        "enum µs",
        "mean delay ns",
        "p99 delay ns",
        "max delay ns",
    ]
}

/// E3 — Theorem 4.1(1): constant-delay enumeration of complete answers.
///
/// The preprocessing phase is the query-directed chase plus the construction
/// of the enumeration structure; the delay is measured between consecutive
/// answers only.
pub fn e3_complete_enum(quick: bool) -> Table {
    let mut table = Table::new(
        "E3",
        "Complete-answer enumeration (Theorem 4.1(1)): linear preprocessing, constant delay",
        &enumeration_headers(),
    );
    for researchers in university_sizes(quick) {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        let stats = measure_stream(
            || {
                let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
                engine.complete_structure().expect("tractable query")
            },
            |structure, tick| {
                for _ in omq_core::AnswerIter::new(structure) {
                    tick();
                }
            },
        );
        table.push_row(delay_row(researchers, facts, &stats));
    }
    table
}

/// E4 — Theorem 4.1(2): all-testing of complete answers.
pub fn e4_all_testing(quick: bool) -> Table {
    let mut table = Table::new(
        "E4",
        "All-testing of complete answers (Theorem 4.1(2)): constant time per test",
        &[
            "researchers",
            "|D| facts",
            "preprocess µs",
            "tests",
            "hits",
            "mean test ns",
        ],
    );
    for researchers in university_sizes(quick) {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let start = Instant::now();
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let tester = engine.all_tester().expect("free-connex query");
        let preprocess_micros = start.elapsed().as_micros();
        // Candidate stream: a mix of true answers and misses.
        let answers = engine.enumerate_complete().expect("tractable");
        let mut candidates: Vec<Vec<omq_data::Value>> = answers
            .iter()
            .take(500)
            .map(|a| a.iter().map(|&c| omq_data::Value::Const(c)).collect())
            .collect();
        let adom = engine.chased_database().adom_consts();
        for i in 0..candidates.len().max(100) {
            let pick = |k: usize| omq_data::Value::Const(adom[(i * 7 + k) % adom.len()]);
            candidates.push(vec![pick(0), pick(1), pick(2)]);
        }
        let start = Instant::now();
        let mut hits = 0usize;
        for c in &candidates {
            if tester.test(c).expect("arity matches") {
                hits += 1;
            }
        }
        let total = start.elapsed().as_nanos();
        table.push_row(vec![
            researchers.to_string(),
            db.len().to_string(),
            preprocess_micros.to_string(),
            candidates.len().to_string(),
            hits.to_string(),
            (total / candidates.len().max(1) as u128).to_string(),
        ]);
    }
    table
}

/// E5 — Theorem 5.2 / Algorithm 1: enumeration of minimal partial answers.
///
/// Preprocessing = query-directed chase + Algorithm 1 preprocessing (the
/// `trees(v,h)` lists); the delay is measured between consecutive answers.
pub fn e5_partial_enum(quick: bool) -> Table {
    let mut table = Table::new(
        "E5",
        "Minimal partial answers, single wildcard (Algorithm 1 / Theorem 5.2)",
        &enumeration_headers(),
    );
    for researchers in university_sizes(quick) {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        let stats = measure_stream(
            || {
                let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
                Some(engine.partial_enumerator().expect("tractable query"))
            },
            |enumerator, tick| {
                enumerator
                    .take()
                    .expect("enumerator built in preprocessing")
                    .enumerate(|_| tick())
                    .expect("tractable query");
            },
        );
        table.push_row(delay_row(researchers, facts, &stats));
    }
    table
}

/// E6 — Theorem 6.1 / Algorithm 2: enumeration of minimal partial answers with
/// multi-wildcards.  Algorithm 2 interleaves its phases (it drives Algorithm 1
/// and the multi-wildcard tester), so the whole run is measured and only the
/// total time and answer counts are reported as delays.
pub fn e6_multi_enum(quick: bool) -> Table {
    let mut table = Table::new(
        "E6",
        "Minimal partial answers with multi-wildcards (Algorithm 2 / Theorem 6.1)",
        &enumeration_headers(),
    );
    for researchers in university_sizes(quick) {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        let stats = measure_stream(
            || OmqEngine::preprocess(&omq, &db).expect("guarded OMQ"),
            |engine, tick| {
                engine
                    .stream_minimal_partial_multi(|_| tick())
                    .expect("tractable query");
            },
        );
        table.push_row(delay_row(researchers, facts, &stats));
    }
    table
}

/// E7 — Theorems 3.4/3.6/5.1: the triangle reductions.
pub fn e7_triangle(quick: bool) -> Table {
    let mut table = Table::new(
        "E7",
        "Triangle reductions: tractable vs triangle-hard single-testing",
        &[
            "vertices",
            "edges",
            "has triangle (direct)",
            "reduction agrees",
            "weakly-acyclic test µs",
            "triangle-hard test µs",
        ],
    );
    let sizes: Vec<(usize, usize)> = if quick {
        vec![(64, 192), (128, 384), (256, 768)]
    } else {
        vec![
            (128, 384),
            (256, 768),
            (512, 1536),
            (1024, 3072),
            (2048, 6144),
        ]
    };
    for (i, (n, m)) in sizes.into_iter().enumerate() {
        // Alternate between general graphs and triangle-free graphs.
        let graph = if i % 2 == 0 {
            random_graph(n, m, i as u64)
        } else {
            random_bipartite_graph(n, m, i as u64)
        };
        let direct = reductions::has_triangle_direct(&graph);
        let via_omq = reductions::has_triangle_via_omq(&graph);
        let start = Instant::now();
        let _ = reductions::single_test_workload(&reductions::path_omq(), &graph);
        let easy_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let _ = reductions::single_test_workload(&reductions::triangle_omq(), &graph);
        let hard_micros = start.elapsed().as_micros();
        table.push_row(vec![
            n.to_string(),
            graph.edges.len().to_string(),
            direct.to_string(),
            (direct == via_omq).to_string(),
            easy_micros.to_string(),
            hard_micros.to_string(),
        ]);
    }
    table
}

/// E8 — Theorems 4.4/4.6: the Boolean matrix multiplication reductions.
pub fn e8_bmm(quick: bool) -> Table {
    let mut table = Table::new(
        "E8",
        "BMM reductions: enumerating a non-free-connex query computes the matrix product",
        &[
            "n",
            "|M1|+|M2| ones",
            "|M1·M2| ones",
            "product correct",
            "enumeration µs",
            "direct spBMM µs",
            "free-connex variant µs",
        ],
    );
    let sizes: Vec<(usize, usize)> = if quick {
        vec![(32, 128), (64, 256), (128, 512)]
    } else {
        vec![(64, 256), (128, 512), (256, 1024), (512, 2048)]
    };
    for (n, ones) in sizes {
        let m1 = sparse_boolean_matrix(n, ones, 1);
        let m2 = sparse_boolean_matrix(n, ones, 2);
        let start = Instant::now();
        let direct = m1.multiply(&m2);
        let direct_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let via_enum = reductions::multiply_via_enumeration(&m1, &m2);
        let enum_micros = start.elapsed().as_micros();
        // The free-connex (full) variant enumerated with constant delay.
        let db = reductions::bmm_database(&m1, &m2);
        let start = Instant::now();
        let structure =
            omq_core::FreeConnexStructure::build(&reductions::bmm_full_query(), &db, false)
                .expect("free-connex query");
        let full_count = omq_core::collect_answers(&structure).len();
        let full_micros = start.elapsed().as_micros();
        let _ = full_count;
        table.push_row(vec![
            n.to_string(),
            (m1.ones.len() + m2.ones.len()).to_string(),
            direct.ones.len().to_string(),
            (direct.ones == via_enum.ones).to_string(),
            enum_micros.to_string(),
            direct_micros.to_string(),
            full_micros.to_string(),
        ]);
    }
    table
}

/// E9 — the running example (Examples 1.1 and 2.2) and Proposition 2.1.
pub fn e9_running_example() -> Table {
    let mut table = Table::new(
        "E9",
        "Running example (Examples 1.1 / 2.2) and complete-answers-first ordering (Prop. 2.1)",
        &["mode", "answers"],
    );
    let (omq, db) = crate::experiments::example_1_1();
    let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
    let complete: Vec<String> = engine
        .enumerate_complete()
        .expect("tractable")
        .iter()
        .map(|a| engine.format_complete(a))
        .collect();
    table.push_row(vec!["complete".to_owned(), complete.join("  ")]);
    let partial: Vec<String> = engine
        .enumerate_minimal_partial()
        .expect("tractable")
        .iter()
        .map(|a| engine.format_partial(a))
        .collect();
    table.push_row(vec!["minimal partial".to_owned(), partial.join("  ")]);
    let multi: Vec<String> = engine
        .enumerate_minimal_partial_multi()
        .expect("tractable")
        .iter()
        .map(|a| engine.format_multi(a))
        .collect();
    table.push_row(vec!["multi-wildcard".to_owned(), multi.join("  ")]);
    let ordered: Vec<String> = engine
        .enumerate_minimal_partial_complete_first()
        .expect("tractable")
        .iter()
        .map(|a| engine.format_partial(a))
        .collect();
    table.push_row(vec!["complete-first order".to_owned(), ordered.join("  ")]);
    table
}

/// The database and OMQ of Example 1.1.
pub fn example_1_1() -> (omq_chase::OntologyMediatedQuery, omq_data::Database) {
    let omq = omq_chase::OntologyMediatedQuery::new(
        crate::generators::university_ontology(),
        crate::generators::university_query(),
    )
    .expect("static OMQ");
    let db = omq_data::Database::builder(crate::generators::university_schema())
        .fact("Researcher", ["mary"])
        .fact("Researcher", ["john"])
        .fact("Researcher", ["mike"])
        .fact("HasOffice", ["mary", "room1"])
        .fact("HasOffice", ["john", "room4"])
        .fact("InBuilding", ["room1", "main1"])
        .build()
        .expect("static database");
    (omq, db)
}

/// E10 — comparison with the brute-force baseline (who wins, by what factor).
pub fn e10_baseline(quick: bool) -> Table {
    let mut table = Table::new(
        "E10",
        "Constant-delay engine vs brute-force chase-and-join baseline",
        &[
            "researchers",
            "engine total µs (partial answers)",
            "baseline total µs",
            "speed-up",
            "answer sets equal",
        ],
    );
    // The engine's advantage is asymptotic (the baseline recomputes minimality
    // by pairwise comparison, which is quadratic in the number of answers), so
    // the sweep is chosen to show the crossover.
    let sizes = if quick {
        vec![100, 400, 1_600]
    } else {
        vec![400, 1_600, 6_400]
    };
    for researchers in sizes {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            office_ratio: 0.5,
            building_ratio: 0.5,
            ..Default::default()
        });
        let start = Instant::now();
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let fast_answers = engine.enumerate_minimal_partial().expect("tractable");
        let fast_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).expect("chase runs");
        let slow_answers = brute.minimal_partial();
        let slow_micros = start.elapsed().as_micros();
        let fast_set: std::collections::BTreeSet<String> = fast_answers
            .iter()
            .map(|t| engine.format_partial(t))
            .collect();
        let slow_set: std::collections::BTreeSet<String> = slow_answers
            .iter()
            .map(|t| t.display_with(|c| brute.chased.const_name(c).to_owned()))
            .collect();
        table.push_row(vec![
            researchers.to_string(),
            fast_micros.to_string(),
            slow_micros.to_string(),
            format!("{:.1}x", slow_micros as f64 / fast_micros.max(1) as f64),
            (fast_set == slow_set).to_string(),
        ]);
    }
    table
}

/// E11 — ablations: chase tree depth and bag memoisation.
pub fn e11_ablation(quick: bool) -> Table {
    let mut table = Table::new(
        "E11",
        "Ablation: query-directed chase memoisation and tree depth",
        &[
            "researchers",
            "memoised chase µs",
            "unmemoised chase µs",
            "depth 2 facts",
            "depth 4 facts",
        ],
    );
    let sizes = if quick {
        vec![500, 1_000]
    } else {
        vec![1_000, 4_000, 16_000]
    };
    for researchers in sizes {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let start = Instant::now();
        let with_memo = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let memo_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let without_memo = OmqEngine::preprocess_with(
            &omq,
            &db,
            &EngineConfig {
                qchase: QchaseConfig {
                    memoize: false,
                    ..Default::default()
                },
            },
        )
        .expect("guarded OMQ");
        let no_memo_micros = start.elapsed().as_micros();
        let shallow = OmqEngine::preprocess_with(
            &omq,
            &db,
            &EngineConfig {
                qchase: QchaseConfig {
                    tree_depth: Some(2),
                    ..Default::default()
                },
            },
        )
        .expect("guarded OMQ");
        let deep = OmqEngine::preprocess_with(
            &omq,
            &db,
            &EngineConfig {
                qchase: QchaseConfig {
                    tree_depth: Some(4),
                    ..Default::default()
                },
            },
        )
        .expect("guarded OMQ");
        let _ = (&with_memo, &without_memo);
        table.push_row(vec![
            researchers.to_string(),
            memo_micros.to_string(),
            no_memo_micros.to_string(),
            shallow.stats().chased_facts.to_string(),
            deep.stats().chased_facts.to_string(),
        ]);
    }
    table
}

/// Reference enumerator for E12: the pre-refactor per-answer loop, walking
/// the hash index (`FxHashMap<Tuple, Vec<usize>>`) of every node with a
/// hash-map variable assignment, instead of the dense CSR parent joins.
fn enumerate_via_hash_index(
    structure: &omq_core::FreeConnexStructure,
    tick: &mut dyn FnMut(&rustc_hash::FxHashMap<omq_cq::VarId, omq_data::Value>),
) {
    use omq_cq::VarId;
    use omq_data::Value;
    use rustc_hash::FxHashMap;
    if structure.boolean_satisfiable == Some(true) {
        tick(&FxHashMap::default());
        return;
    }
    if structure.empty || structure.boolean_satisfiable.is_some() {
        return;
    }
    fn go(
        structure: &omq_core::FreeConnexStructure,
        depth: usize,
        assignment: &mut FxHashMap<VarId, Value>,
        tick: &mut dyn FnMut(&FxHashMap<VarId, Value>),
    ) {
        if depth == structure.preorder.len() {
            tick(assignment);
            return;
        }
        let node = structure.preorder[depth];
        let node_data = &structure.nodes[node];
        let key: Vec<Value> = node_data.pred_vars.iter().map(|v| assignment[v]).collect();
        let Some(candidates) = node_data.index.get(&key) else {
            return;
        };
        for &tuple_idx in candidates {
            let tuple = node_data.extension.tuple(tuple_idx);
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (pos, &var) in node_data.extension.vars.iter().enumerate() {
                if let std::collections::hash_map::Entry::Vacant(e) = assignment.entry(var) {
                    e.insert(tuple[pos]);
                    newly_bound.push(var);
                }
            }
            go(structure, depth + 1, assignment, tick);
            for var in newly_bound {
                assignment.remove(&var);
            }
        }
    }
    let mut assignment = FxHashMap::default();
    go(structure, 0, &mut assignment, tick);
}

/// E12 — the plan/instance split: plan-reuse amortisation (one compiled
/// `QueryPlan` executed over many databases, chase memo shared) and the
/// delay distributions of the columnar (dense CSR) enumeration loop versus
/// the old hash-index loop.  Also cross-checks, per database, that the plan
/// path agrees answer-for-answer with a fresh per-database engine.
pub fn e12_plan_columnar(quick: bool) -> Table {
    let mut table = Table::new(
        "E12",
        "Plan reuse amortisation and columnar-vs-hash per-answer delay",
        &[
            "researchers",
            "|D| facts",
            "plan exec µs",
            "fresh engine µs",
            "memo hits",
            "answers",
            "dense mean ns",
            "dense p99 ns",
            "iter mean ns",
            "iter p99 ns",
            "hash mean ns",
            "partial mean ns",
            "answers equal",
        ],
    );
    let (omq, _) = university(&UniversityConfig {
        researchers: 1,
        ..Default::default()
    });
    let compile_start = Instant::now();
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");
    let compile_micros = compile_start.elapsed().as_micros() as f64;

    let mut facts_axis: Vec<f64> = Vec::new();
    let mut dense_means: Vec<f64> = Vec::new();
    let mut dense_p99s: Vec<f64> = Vec::new();
    let mut iter_means: Vec<f64> = Vec::new();
    let mut iter_p99s: Vec<f64> = Vec::new();
    let mut exec_micros_total = 0f64;
    let mut fresh_micros_total = 0f64;
    for researchers in university_sizes(quick) {
        let (_, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        // Fresh per-database engine: recompiles the plan and starts with a
        // cold chase memo every time.
        let start = Instant::now();
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let fresh_micros = start.elapsed().as_micros();
        // The compiled plan: query artefacts and chase memo amortised.
        let start = Instant::now();
        let instance = plan.execute(&db).expect("guarded OMQ");
        let exec_micros = start.elapsed().as_micros();
        exec_micros_total += exec_micros as f64;
        fresh_micros_total += fresh_micros as f64;

        // Delay distribution of the dense columnar enumeration loop.
        let dense = measure_stream(
            || instance.complete_structure().expect("tractable query"),
            |structure, tick| {
                for _ in omq_core::AnswerIter::new(structure) {
                    tick();
                }
            },
        );
        // The same answers through the pull-based cursor API — the metric a
        // caller of `answers(Semantics::Complete)` actually experiences.
        let iter = measure_iterator(|| {
            instance
                .answers(Semantics::Complete)
                .expect("tractable query")
        });
        // The same answers through the old hash-index loop.
        let hash = measure_stream(
            || instance.complete_structure().expect("tractable query"),
            |structure, tick| {
                enumerate_via_hash_index(structure, &mut |_| tick());
            },
        );
        // Minimal partial answers through the dense Algorithm 1 loop.
        let partial = measure_stream(
            || Some(instance.partial_enumerator().expect("tractable query")),
            |enumerator, tick| {
                enumerator
                    .take()
                    .expect("enumerator built in preprocessing")
                    .enumerate(|_| tick())
                    .expect("tractable query");
            },
        );

        // Answer-for-answer agreement of the plan path with the fresh
        // engine, on all three semantics (multi-wildcards only at the
        // smaller sizes to keep the experiment's runtime bounded).
        let mut equal = plan_agrees_with_engine(&instance, &engine, researchers <= 1_000);
        equal &= dense.answers == hash.answers;
        equal &= dense.answers == iter.answers;

        facts_axis.push(facts as f64);
        dense_means.push(dense.mean_delay_nanos as f64);
        dense_p99s.push(dense.p99_delay_nanos as f64);
        iter_means.push(iter.mean_delay_nanos as f64);
        iter_p99s.push(iter.p99_delay_nanos as f64);
        table.push_row(vec![
            researchers.to_string(),
            facts.to_string(),
            exec_micros.to_string(),
            fresh_micros.to_string(),
            instance.stats().memo_hits.to_string(),
            dense.answers.to_string(),
            dense.mean_delay_nanos.to_string(),
            dense.p99_delay_nanos.to_string(),
            iter.mean_delay_nanos.to_string(),
            iter.p99_delay_nanos.to_string(),
            hash.mean_delay_nanos.to_string(),
            partial.mean_delay_nanos.to_string(),
            equal.to_string(),
        ]);
    }
    let (delay_slope, _) = linear_fit(&facts_axis, &dense_means);
    table.push_metric("plan_compile_micros", compile_micros);
    table.push_metric("plan_exec_micros_total", exec_micros_total);
    table.push_metric("fresh_engine_micros_total", fresh_micros_total);
    table.push_metric(
        "amortisation_speedup",
        fresh_micros_total / exec_micros_total.max(1.0),
    );
    // Flat per-answer delay ⟺ slope ≈ 0 ns per fact.
    table.push_metric("dense_delay_slope_ns_per_fact", delay_slope);
    let (iter_slope, _) = linear_fit(&facts_axis, &iter_means);
    table.push_metric("iter_delay_slope_ns_per_fact", iter_slope);
    // Absolute per-answer delay at the largest database — mean and p99, the
    // trajectory-gated "constant" of DelayClin (see `crate::trajectory`).
    table.push_metric(
        "dense_mean_ns_at_max",
        dense_means.last().copied().unwrap_or(0.0),
    );
    table.push_metric(
        "dense_p99_ns_at_max",
        dense_p99s.last().copied().unwrap_or(0.0),
    );
    table.push_metric(
        "iter_mean_ns_at_max",
        iter_means.last().copied().unwrap_or(0.0),
    );
    table.push_metric(
        "iter_p99_ns_at_max",
        iter_p99s.last().copied().unwrap_or(0.0),
    );
    table
}

/// Compares every semantics of the plan-produced instance with a fresh
/// engine over the same database.
fn plan_agrees_with_engine(
    instance: &omq_core::PreparedInstance,
    engine: &OmqEngine,
    include_multi: bool,
) -> bool {
    use std::collections::BTreeSet;
    let complete_plan: BTreeSet<String> = instance
        .enumerate_complete()
        .expect("tractable")
        .iter()
        .map(|a| instance.format_complete(a))
        .collect();
    let complete_engine: BTreeSet<String> = engine
        .enumerate_complete()
        .expect("tractable")
        .iter()
        .map(|a| engine.format_complete(a))
        .collect();
    if complete_plan != complete_engine {
        return false;
    }
    let partial_plan: BTreeSet<String> = instance
        .enumerate_minimal_partial()
        .expect("tractable")
        .iter()
        .map(|t| instance.format_partial(t))
        .collect();
    let partial_engine: BTreeSet<String> = engine
        .enumerate_minimal_partial()
        .expect("tractable")
        .iter()
        .map(|t| engine.format_partial(t))
        .collect();
    if partial_plan != partial_engine {
        return false;
    }
    if include_multi {
        let multi_plan: BTreeSet<String> = instance
            .enumerate_minimal_partial_multi()
            .expect("tractable")
            .iter()
            .map(|t| instance.format_multi(t))
            .collect();
        let multi_engine: BTreeSet<String> = engine
            .enumerate_minimal_partial_multi()
            .expect("tractable")
            .iter()
            .map(|t| engine.format_multi(t))
            .collect();
        if multi_plan != multi_engine {
            return false;
        }
    }
    true
}

/// E13 — shared-nothing parallel execution: speedup of
/// `QueryPlan::execute_parallel` versus thread count on a component-rich
/// clustered workload, plus the per-answer delay of the merged (chained)
/// enumeration, which must stay flat as threads are added.
///
/// The chase memo is warmed before the sweep so that every run measures the
/// steady-state serving path (sharding + parallel chase + merge), not the
/// first-run bag-type discovery.  Every parallel run is cross-checked
/// answer-for-answer (as multisets) against the sequential baseline on both
/// the complete and the minimal-partial semantics.
pub fn e13_parallel_speedup(quick: bool) -> Table {
    use std::collections::BTreeMap;
    let mut table = Table::new(
        "E13",
        "Parallel execution: Gaifman-sharded chase, speedup vs thread count",
        &[
            "threads",
            "shards",
            "exec µs",
            "speedup",
            "answers",
            "mean delay ns",
            "p99 delay ns",
            "answers equal",
        ],
    );
    let config = if quick {
        ClusteredConfig {
            clusters: 8,
            researchers_per_cluster: 125,
            ..Default::default()
        }
    } else {
        ClusteredConfig {
            clusters: 16,
            researchers_per_cluster: 500,
            ..Default::default()
        }
    };
    let (omq, db) = clustered_university(&config);
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");
    // Warm the shared chase memo (bag-type tables are data-independent).
    let _ = plan.execute(&db).expect("guarded OMQ");
    let start = Instant::now();
    let sequential = plan.execute(&db).expect("guarded OMQ");
    let sequential_micros = start.elapsed().as_micros().max(1);
    let answer_multisets = |instance: &omq_core::PreparedInstance| {
        let mut complete: BTreeMap<Vec<omq_data::ConstId>, usize> = BTreeMap::new();
        for a in instance.enumerate_complete().expect("tractable query") {
            *complete.entry(a).or_default() += 1;
        }
        let mut partial: BTreeMap<omq_data::PartialTuple, usize> = BTreeMap::new();
        for t in instance
            .enumerate_minimal_partial()
            .expect("tractable query")
        {
            *partial.entry(t).or_default() += 1;
        }
        (complete, partial)
    };
    let baseline = answer_multisets(&sequential);

    let mut mean_delay_1t = 0f64;
    for threads in [1usize, 2, 4, 8] {
        let stats = measure_stream(
            || plan.execute_parallel(&db, threads).expect("guarded OMQ"),
            |instance, tick| {
                instance
                    .stream_minimal_partial(|_| tick())
                    .expect("tractable query");
            },
        );
        let exec_micros = stats.preprocess_micros.max(1);
        let speedup = sequential_micros as f64 / exec_micros as f64;
        // Untimed verification run.
        let instance = plan.execute_parallel(&db, threads).expect("guarded OMQ");
        let equal = answer_multisets(&instance) == baseline;
        if threads == 1 {
            mean_delay_1t = stats.mean_delay_nanos as f64;
        } else {
            table.push_metric(&format!("speedup_{threads}_threads"), speedup);
        }
        if threads == 4 {
            table.push_metric(
                "delay_ratio_4_threads_vs_1",
                stats.mean_delay_nanos as f64 / mean_delay_1t.max(1.0),
            );
        }
        table.push_row(vec![
            threads.to_string(),
            instance.shard_count().to_string(),
            exec_micros.to_string(),
            format!("{speedup:.2}x"),
            stats.answers.to_string(),
            stats.mean_delay_nanos.to_string(),
            stats.p99_delay_nanos.to_string(),
            equal.to_string(),
        ]);
    }
    table.push_metric("sequential_exec_micros", sequential_micros as f64);
    table.push_metric("input_facts", db.len() as f64);
    table.push_metric("components", db.component_count() as f64);
    table
}

/// E14 — the answer-cursor API: time-to-first-answer and `take(k)` cost
/// versus database size, through `PreparedInstance::answers(Semantics)`.
///
/// The paper's DelayClin guarantee, read as an API contract, says: after the
/// linear preprocessing, the first answer arrives after O(1) further work and
/// the first `k` answers after `O(k)` — independent of `|D|`.  This
/// experiment sweeps the database size, times the cursor construction
/// (preprocessing), the delay to the first `next()` (TTFA) and a
/// `take(k)` page on the minimal-partial semantics, and fits the per-fact
/// slope of the page cost, which must be ~flat.  Every row also verifies the
/// **prefix property** on all three semantics: `answers(sem).take(k)` equals
/// the first `k` answers of the full enumeration (the CI gate).
pub fn e14_cursor_pagination(quick: bool) -> Table {
    const K: usize = 64;
    let mut table = Table::new(
        "E14",
        "Answer cursor: time-to-first-answer and take(k) cost vs |D|",
        &[
            "researchers",
            "|D| facts",
            "answers() µs",
            "ttfa ns",
            "take(64) µs",
            "page mean ns",
            "page p99 ns",
            "full answers",
            "full enum µs",
            "prefix ok",
        ],
    );
    let (omq, _) = university(&UniversityConfig {
        researchers: 1,
        ..Default::default()
    });
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");

    let mut facts_axis: Vec<f64> = Vec::new();
    let mut page_nanos: Vec<f64> = Vec::new();
    let mut page_means: Vec<f64> = Vec::new();
    let mut page_p99s: Vec<f64> = Vec::new();
    let mut ttfa_nanos: Vec<f64> = Vec::new();
    for researchers in university_sizes(quick) {
        let (_, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        let instance = plan.execute(&db).expect("guarded OMQ");

        // A `take(k)` page: cursor construction (= enumeration
        // preprocessing) plus k constant-work `next()` calls.
        let page = measure_take_k(
            || {
                instance
                    .answers(Semantics::MinimalPartial)
                    .expect("tractable query")
            },
            K,
        );
        // The full enumeration through the same cursor, for scale.
        let full = measure_iterator(|| {
            instance
                .answers(Semantics::MinimalPartial)
                .expect("tractable query")
        });

        // Prefix property on all three semantics (multi-wildcards only at
        // the smaller sizes: Algorithm 2's tester dominates beyond that).
        let mut prefix_ok = true;
        for sem in Semantics::ALL {
            if sem == Semantics::MinimalPartialMulti && researchers > 1_000 {
                continue;
            }
            let all: Vec<Answer> = instance.answers(sem).expect("tractable query").collect();
            let prefix: Vec<Answer> = instance
                .answers(sem)
                .expect("tractable query")
                .take(K)
                .collect();
            prefix_ok &= prefix == all[..K.min(all.len())];
        }

        facts_axis.push(facts as f64);
        page_nanos.push(page.enumeration_micros as f64 * 1e3);
        page_means.push(page.mean_delay_nanos as f64);
        page_p99s.push(page.p99_delay_nanos as f64);
        ttfa_nanos.push(page.first_delay_nanos as f64);
        table.push_row(vec![
            researchers.to_string(),
            facts.to_string(),
            page.preprocess_micros.to_string(),
            page.first_delay_nanos.to_string(),
            page.enumeration_micros.to_string(),
            page.mean_delay_nanos.to_string(),
            page.p99_delay_nanos.to_string(),
            full.answers.to_string(),
            full.enumeration_micros.to_string(),
            prefix_ok.to_string(),
        ]);
    }
    // The flat-delay assertion: the cost of a k-answer page must not grow
    // with the database (slope in ns per fact ≈ 0; preprocessing, which is
    // allowed to grow linearly, is excluded).
    let (page_slope, _) = linear_fit(&facts_axis, &page_nanos);
    let (ttfa_slope, _) = linear_fit(&facts_axis, &ttfa_nanos);
    table.push_metric("take_k", K as f64);
    table.push_metric("take_k_slope_ns_per_fact", page_slope);
    table.push_metric("ttfa_slope_ns_per_fact", ttfa_slope);
    table.push_metric(
        "ttfa_max_nanos",
        ttfa_nanos.iter().copied().fold(0.0, f64::max),
    );
    // Absolute page-delay constants at the largest database — mean and p99,
    // gated by the perf-trajectory lab (see `crate::trajectory`).
    table.push_metric(
        "page_mean_ns_at_max",
        page_means.last().copied().unwrap_or(0.0),
    );
    table.push_metric(
        "page_p99_ns_at_max",
        page_p99s.last().copied().unwrap_or(0.0),
    );
    table
}

/// E15 — the session API: ingest throughput through transactional commits,
/// and the post-commit time-to-first-answer of a fresh snapshot, versus
/// store size.
///
/// The session model (`Store` / `Txn` / `Snapshot` + `ServingEngine`) claims
/// that (1) data changes are batch commits whose cost is linear in the batch,
/// (2) a pinned snapshot's answers are immune to concurrent commits, and
/// (3) a fresh snapshot sees the new facts through the *same* compiled plan,
/// paying only the data-linear preprocessing again.  This experiment ingests
/// the university workload through fixed-size transactions, then pins a
/// snapshot, commits a late batch, and checks:
///
/// * the pinned snapshot's answer multiset is unchanged (isolation),
/// * the fresh snapshot's answers equal a from-scratch evaluation of the
///   merged database (freshness) — both folded into the `answers equal`
///   column, the CI gate;
/// * the post-commit TTFA (plan execution over the fresh snapshot + the
///   first `next()`) as the store grows — linear in `|D|` by the paper's
///   preprocessing bound, with the cursor delay itself flat.
pub fn e15_live_store(quick: bool) -> Table {
    const FACTS_PER_TXN: usize = 256;
    let mut table = Table::new(
        "E15",
        "Live store: txn ingest throughput and post-commit snapshot TTFA",
        &[
            "researchers",
            "|D| facts",
            "txns",
            "ingest µs",
            "facts/s",
            "epoch",
            "ttfa µs",
            "first next() ns",
            "answers",
            "answers equal",
        ],
    );
    let (omq, _) = university(&UniversityConfig {
        researchers: 1,
        ..Default::default()
    });

    let mut facts_axis: Vec<f64> = Vec::new();
    let mut ttfa_micros_axis: Vec<f64> = Vec::new();
    let mut last_throughput = 0.0f64;
    for researchers in university_sizes(quick) {
        let (_, generated) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });

        // The session: one engine, one registered query, one store.
        let mut engine = omq_serve::ServingEngine::new(2);
        let q = engine.register_query("office", &omq).expect("guarded OMQ");

        // Ingest the generated facts through fixed-size transactions.
        let ingest_start = Instant::now();
        let mut txn = omq_serve::Txn::new();
        let mut staged = 0usize;
        let mut txns = 0usize;
        for fact in generated.facts() {
            let rel = generated.schema().name(fact.rel);
            let args: Vec<&str> = fact
                .args
                .iter()
                .map(|&v| match v {
                    omq_data::Value::Const(c) => generated.const_name(c),
                    omq_data::Value::Null(_) => unreachable!("generator emits S-databases"),
                })
                .collect();
            txn = txn.insert(rel, &args);
            staged += 1;
            if staged == FACTS_PER_TXN {
                engine.register_data(txn).expect("valid batch");
                txn = omq_serve::Txn::new();
                staged = 0;
                txns += 1;
            }
        }
        if staged > 0 {
            engine.register_data(txn).expect("valid batch");
            txns += 1;
        }
        let ingest_micros = ingest_start.elapsed().as_micros();
        let facts = engine.store().len();
        let throughput = if ingest_micros == 0 {
            0.0
        } else {
            facts as f64 / (ingest_micros as f64 / 1e6)
        };
        last_throughput = throughput;

        // Pin the loaded epoch and record its answers.
        let pinned = engine.snapshot();
        // Plans are cheap clones (shared `Arc` state): clone the handle out
        // of the engine so the later `register_data` commit can borrow it
        // mutably — the very pattern a writer task uses in production.
        let plan = engine.plan(q).expect("registered").clone();
        let mut before: Vec<Answer> = plan
            .execute(&pinned)
            .expect("guarded OMQ")
            .answers(Semantics::MinimalPartial)
            .expect("tractable query")
            .collect();
        before.sort();

        // A late commit: complete chains, so fresh snapshots gain answers.
        let late: Vec<[String; 2]> = (0..8)
            .map(|i| [format!("zz_extra{i}"), format!("zz_office{i}")])
            .collect();
        let late_buildings: Vec<[String; 2]> = (0..8)
            .map(|i| [format!("zz_office{i}"), "zz_hq".to_owned()])
            .collect();
        engine
            .register_data(
                omq_serve::Txn::new()
                    .insert_all("HasOffice", &late)
                    .insert_all("InBuilding", &late_buildings),
            )
            .expect("valid batch");

        // Isolation: the pinned snapshot's answer multiset is unchanged.
        let mut pinned_after: Vec<Answer> = plan
            .execute(&pinned)
            .expect("guarded OMQ")
            .answers(Semantics::MinimalPartial)
            .expect("tractable query")
            .collect();
        pinned_after.sort();
        let isolated = pinned_after == before;

        // Freshness: a fresh snapshot equals a from-scratch evaluation of
        // the merged database (generator facts + the late batch).
        let fresh = engine.snapshot();
        let page = measure_take_k(
            || {
                plan.execute(&fresh)
                    .expect("guarded OMQ")
                    .answers(Semantics::MinimalPartial)
                    .expect("tractable query")
            },
            1,
        );
        let mut merged = generated.clone();
        for row in &late {
            merged
                .add_named_fact("HasOffice", row)
                .expect("schema fits");
        }
        for row in &late_buildings {
            merged
                .add_named_fact("InBuilding", row)
                .expect("schema fits");
        }
        let reference_instance = plan.execute(&merged).expect("guarded OMQ");
        let mut reference: Vec<String> = reference_instance
            .answers(Semantics::MinimalPartial)
            .expect("tractable query")
            .map(|a| reference_instance.format_answer(&a))
            .collect();
        reference.sort();
        let fresh_instance = plan.execute(&fresh).expect("guarded OMQ");
        let mut fresh_answers: Vec<String> = fresh_instance
            .answers(Semantics::MinimalPartial)
            .expect("tractable query")
            .map(|a| fresh_instance.format_answer(&a))
            .collect();
        fresh_answers.sort();
        let fresh_matches = fresh_answers == reference;
        let gained = fresh_answers.len() > before.len();
        let answers_equal = isolated && fresh_matches && gained;

        let ttfa_micros = page.preprocess_micros + page.first_delay_nanos / 1_000;
        facts_axis.push(facts as f64);
        ttfa_micros_axis.push(ttfa_micros as f64);
        table.push_row(vec![
            researchers.to_string(),
            facts.to_string(),
            txns.to_string(),
            ingest_micros.to_string(),
            format!("{throughput:.0}"),
            engine.epoch().to_string(),
            ttfa_micros.to_string(),
            page.first_delay_nanos.to_string(),
            fresh_answers.len().to_string(),
            answers_equal.to_string(),
        ]);
    }
    let (ttfa_slope, _) = linear_fit(&facts_axis, &ttfa_micros_axis);
    table.push_metric("facts_per_txn", FACTS_PER_TXN as f64);
    table.push_metric("ingest_facts_per_sec", last_throughput);
    table.push_metric("post_commit_ttfa_slope_us_per_fact", ttfa_slope);
    table.push_metric(
        "post_commit_ttfa_max_us",
        ttfa_micros_axis.iter().copied().fold(0.0, f64::max),
    );
    table
}

/// E16 — incremental maintenance: the post-commit time-to-first-answer of a
/// delta-chase refresh versus a full rebuild, as the store grows.
///
/// `PreparedInstance::refresh` claims that after a component-local commit,
/// only the dirty Gaifman components are re-chased and re-indexed while every
/// untouched shard is spliced in by pointer — so the post-commit TTFA is
/// proportional to the *delta*, not to `|D|`.  This experiment loads the
/// clustered (component-rich) university workload through a `Store`, commits
/// a fixed six-fact single-component delta, and times, at growing `|D|`:
///
/// * **refresh ttfa** — `refresh(head, receipt)` + first `next()` of the
///   answer stream (the fresh, delta-sized shard streams first);
/// * **rebuild ttfa** — from-scratch `QueryPlan::execute` + first `next()`.
///
/// The `answers equal` column is the CI gate: the refreshed instance must
/// reuse at least one shard *and* agree with the from-scratch evaluation on
/// every semantics.  The exported slopes are the delta-proportionality
/// metric: the rebuild TTFA grows linearly in `|D|` while the refresh TTFA
/// stays ~flat (its slope is bounded by the per-fact cost of the dirty-set
/// computation, orders of magnitude below the rebuild slope).
pub fn e16_incremental_maintenance(quick: bool) -> Table {
    let mut table = Table::new(
        "E16",
        "Delta-chase refresh: post-commit TTFA vs full rebuild",
        &[
            "clusters",
            "|D| facts",
            "shards",
            "reused",
            "delta facts",
            "refresh ttfa µs",
            "rebuild ttfa µs",
            "speedup",
            "answers equal",
        ],
    );
    let per_cluster = if quick { 64 } else { 250 };
    let cluster_counts: Vec<usize> = if quick {
        vec![4, 8, 16, 32]
    } else {
        vec![16, 32, 64, 128, 256]
    };

    let mut facts_axis: Vec<f64> = Vec::new();
    let mut refresh_axis: Vec<f64> = Vec::new();
    let mut rebuild_axis: Vec<f64> = Vec::new();
    let mut last_speedup = 0.0f64;
    let mut delta_facts = 0usize;
    for clusters in cluster_counts {
        let (omq, generated) = clustered_university(&ClusteredConfig {
            clusters,
            researchers_per_cluster: per_cluster,
            ..Default::default()
        });
        let plan = QueryPlan::compile(&omq).expect("guarded OMQ");

        // Load the generated facts through the transactional store.
        let mut store = omq_data::Store::new(generated.schema().clone());
        let mut txn = omq_data::Txn::new();
        for fact in generated.facts() {
            let rel = generated.schema().name(fact.rel);
            let args: Vec<&str> = fact
                .args
                .iter()
                .map(|&v| match v {
                    omq_data::Value::Const(c) => generated.const_name(c),
                    omq_data::Value::Null(_) => unreachable!("generator emits S-databases"),
                })
                .collect();
            txn = txn.insert(rel, &args);
        }
        store.commit(txn).expect("valid load");
        let baseline = plan.execute_tracked(store.snapshot()).expect("guarded OMQ");

        // The fixed-size, component-local delta: one fresh building holding
        // two complete researcher chains — a single new Gaifman component.
        let receipt = store
            .commit(
                omq_data::Txn::new()
                    .insert("Researcher", ["delta_p0"])
                    .insert("HasOffice", ["delta_p0", "delta_o0"])
                    .insert("InBuilding", ["delta_o0", "delta_hq"])
                    .insert("Researcher", ["delta_p1"])
                    .insert("HasOffice", ["delta_p1", "delta_o1"])
                    .insert("InBuilding", ["delta_o1", "delta_hq"]),
            )
            .expect("valid delta");
        delta_facts = receipt.new_facts;
        let head = store.snapshot();
        let facts = store.len();

        // Post-commit TTFA, both ways: build-to-first-answer, end to end.
        let refresh_page = measure_take_k(
            || {
                baseline
                    .refresh(&head, &receipt)
                    .expect("incremental refresh")
                    .answers(Semantics::MinimalPartial)
                    .expect("tractable query")
            },
            1,
        );
        let rebuild_page = measure_take_k(
            || {
                plan.execute(&head)
                    .expect("guarded OMQ")
                    .answers(Semantics::MinimalPartial)
                    .expect("tractable query")
            },
            1,
        );

        // The gate: the refresh was genuinely incremental (shards reused)
        // and indistinguishable from a from-scratch evaluation.
        let refreshed = baseline
            .refresh(&head, &receipt)
            .expect("incremental refresh");
        let scratch = plan.execute(&head).expect("guarded OMQ");
        let mut answers_equal = refreshed.stats().reused_shards > 0;
        for sem in Semantics::ALL {
            // Algorithm 2's tester dominates beyond this size (cf. E14).
            if sem == Semantics::MinimalPartialMulti && facts > 20_000 {
                continue;
            }
            let mut incremental: Vec<String> = refreshed
                .answers(sem)
                .expect("tractable query")
                .map(|a| refreshed.format_answer(&a))
                .collect();
            let mut reference: Vec<String> = scratch
                .answers(sem)
                .expect("tractable query")
                .map(|a| scratch.format_answer(&a))
                .collect();
            incremental.sort();
            reference.sort();
            answers_equal &= incremental == reference;
        }

        let refresh_ttfa = refresh_page.preprocess_micros + refresh_page.first_delay_nanos / 1_000;
        let rebuild_ttfa = rebuild_page.preprocess_micros + rebuild_page.first_delay_nanos / 1_000;
        let speedup = rebuild_ttfa as f64 / refresh_ttfa.max(1) as f64;
        last_speedup = speedup;
        facts_axis.push(facts as f64);
        refresh_axis.push(refresh_ttfa as f64);
        rebuild_axis.push(rebuild_ttfa as f64);
        table.push_row(vec![
            clusters.to_string(),
            facts.to_string(),
            refreshed.shard_count().to_string(),
            refreshed.stats().reused_shards.to_string(),
            delta_facts.to_string(),
            refresh_ttfa.to_string(),
            rebuild_ttfa.to_string(),
            format!("{speedup:.1}"),
            answers_equal.to_string(),
        ]);
    }
    let (refresh_slope, _) = linear_fit(&facts_axis, &refresh_axis);
    let (rebuild_slope, _) = linear_fit(&facts_axis, &rebuild_axis);
    table.push_metric("delta_facts", delta_facts as f64);
    table.push_metric("post_commit_refresh_slope_us_per_fact", refresh_slope);
    table.push_metric("full_rebuild_slope_us_per_fact", rebuild_slope);
    table.push_metric("ttfa_speedup_at_max", last_speedup);
    table.push_metric(
        "refresh_ttfa_max_us",
        refresh_axis.iter().copied().fold(0.0, f64::max),
    );
    table
}

/// E17 — batched hot-path enumeration: the per-answer cost of draining an
/// [`omq_core::AnswerStream`] one `next()` at a time versus in `next_batch`
/// blocks, and the staging cost of the chase's [`FactArena`] versus per-fact
/// `Vec<Fact>` allocation (the pre-arena staging discipline).
///
/// Batching does not change what is computed — the property tests pin
/// `next_batch(k)` to `k × next()` answer-for-answer — it only amortises the
/// per-pull dispatch (semantics match, shard bookkeeping, iterator plumbing)
/// over a block.  Both drains are timed with [`measure_drain`]: two clock
/// reads bracket the whole loop, because per-answer instrumentation à la
/// [`measure_take_k`] costs two `Instant::now` calls per answer, the same
/// order of magnitude as the constant under comparison.
pub fn e17_batched_enumeration(quick: bool) -> Table {
    const BATCH: usize = 256;
    const STAGING_ROUNDS: usize = 8;
    let mut table = Table::new(
        "E17",
        "Batched enumeration and arena staging: dispatch amortisation",
        &[
            "researchers",
            "|D| facts",
            "answers",
            "next() ns/ans",
            "batch ns/ans",
            "speedup",
            "partial next() ns/ans",
            "partial batch ns/ans",
            "vec stage ns/fact",
            "arena stage ns/fact",
            "answers equal",
        ],
    );
    let (omq, _) = university(&UniversityConfig {
        researchers: 1,
        ..Default::default()
    });
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");

    let mut batch_speedup_at_max = 0.0;
    let mut partial_speedup_at_max = 0.0;
    let mut arena_speedup_at_max = 0.0;
    let mut unbatched_at_max = 0.0;
    let mut batched_at_max = 0.0;
    for researchers in university_sizes(quick) {
        let (_, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let facts = db.len();
        let instance = plan.execute(&db).expect("guarded OMQ");

        // One `next()` call per answer — the per-tuple pull everyone wrote
        // before `next_batch` existed.
        let drain_next = |sem: Semantics| {
            measure_drain(
                || instance.answers(sem).expect("tractable query"),
                |stream| {
                    let mut n = 0usize;
                    // Explicit `next()` per answer is the thing under test —
                    // a `for` desugars identically but hides the call.
                    #[allow(clippy::while_let_on_iterator)]
                    while let Some(answer) = stream.next() {
                        std::hint::black_box(&answer);
                        n += 1;
                    }
                    n
                },
            )
        };
        // The same answers pulled in `BATCH`-sized blocks.
        let drain_batch = |sem: Semantics| {
            measure_drain(
                || (instance.answers(sem).expect("tractable query"), Vec::new()),
                |(stream, block)| {
                    let mut n = 0usize;
                    loop {
                        let got = stream.next_batch(block, BATCH);
                        if got == 0 {
                            break;
                        }
                        for answer in block.drain(..) {
                            std::hint::black_box(&answer);
                        }
                        n += got;
                    }
                    n
                },
            )
        };
        let complete_next = drain_next(Semantics::Complete);
        let complete_batch = drain_batch(Semantics::Complete);
        let partial_next = drain_next(Semantics::MinimalPartial);
        let partial_batch = drain_batch(Semantics::MinimalPartial);

        // Arena-vs-malloc staging: push every database fact through the two
        // staging disciplines the chase has used — a fresh `Vec<Fact>` per
        // round (one argument-vector allocation per fact, all freed at the
        // end of the round) versus one recycled [`FactArena`].
        let base_facts = db.facts();
        let vec_stage = measure_drain(
            || (),
            |_| {
                let mut n = 0usize;
                for _ in 0..STAGING_ROUNDS {
                    let mut staged: Vec<omq_data::Fact> = Vec::new();
                    for fact in base_facts {
                        staged.push(omq_data::Fact::new(fact.rel, fact.args.clone()));
                    }
                    for fact in &staged {
                        std::hint::black_box(fact);
                        n += 1;
                    }
                }
                n
            },
        );
        let arena_stage = measure_drain(FactArena::new, |arena| {
            let mut n = 0usize;
            for _ in 0..STAGING_ROUNDS {
                arena.clear();
                for fact in base_facts {
                    arena.push_fact(fact.rel, &fact.args);
                }
                for staged in arena.facts() {
                    std::hint::black_box(&staged);
                    n += 1;
                }
            }
            n
        });

        let speedup =
            complete_next.per_answer_nanos() / complete_batch.per_answer_nanos().max(1e-9);
        let partial_speedup =
            partial_next.per_answer_nanos() / partial_batch.per_answer_nanos().max(1e-9);
        let arena_speedup = vec_stage.per_answer_nanos() / arena_stage.per_answer_nanos().max(1e-9);
        let equal = complete_next.answers == complete_batch.answers
            && partial_next.answers == partial_batch.answers;

        batch_speedup_at_max = speedup;
        partial_speedup_at_max = partial_speedup;
        arena_speedup_at_max = arena_speedup;
        unbatched_at_max = complete_next.per_answer_nanos();
        batched_at_max = complete_batch.per_answer_nanos();
        table.push_row(vec![
            researchers.to_string(),
            facts.to_string(),
            complete_next.answers.to_string(),
            format!("{:.1}", complete_next.per_answer_nanos()),
            format!("{:.1}", complete_batch.per_answer_nanos()),
            format!("{speedup:.2}"),
            format!("{:.1}", partial_next.per_answer_nanos()),
            format!("{:.1}", partial_batch.per_answer_nanos()),
            format!("{:.1}", vec_stage.per_answer_nanos()),
            format!("{:.1}", arena_stage.per_answer_nanos()),
            equal.to_string(),
        ]);
    }
    table.push_metric("batch_size", BATCH as f64);
    table.push_metric("staging_rounds", STAGING_ROUNDS as f64);
    // The acceptance gate: batched pulls amortise dispatch to ≥1.5× lower
    // mean per-answer cost at the largest database.
    table.push_metric("batch_speedup_at_max", batch_speedup_at_max);
    table.push_metric("partial_batch_speedup_at_max", partial_speedup_at_max);
    table.push_metric("arena_staging_speedup_at_max", arena_speedup_at_max);
    table.push_metric("unbatched_ns_per_answer_at_max", unbatched_at_max);
    table.push_metric("batched_ns_per_answer_at_max", batched_at_max);
    table
}

/// E18 — aggregate fast paths and scan kernels: `count()` versus
/// drain-and-count, allocation-free batched partial emission
/// ([`PartialEnumerator::fill_values`]) versus per-answer owned pulls
/// through the warmed answer stream, and the chunked scan kernels of
/// `omq_data::kernels` versus a scalar gather loop.
///
/// `count()` never materialises an answer: for complete semantics it walks
/// assignment prefixes and closes each with one CSR-length kernel call at
/// the leaf, so its cost is `O(materialisation + prefixes)` while the drain
/// pays `O(materialisation + answers × per-answer constant)`.  Both sides
/// are timed as whole calls (structure materialisation included), which is
/// what a caller of either API pays.  The correctness column re-checks
/// `count == drain` and `exists == (first answer exists)` on *all three*
/// semantics — the wildcard semantics count through the borrowed-tuple
/// minimality merge, which this experiment would not otherwise exercise.
pub fn e18_aggregate_fast_paths(quick: bool) -> Table {
    const BATCH: usize = 256;
    const SCAN_ROUNDS: usize = 64;
    /// Repetitions per timed drain: each drain here is a ~millisecond
    /// single shot, so one sample is at the mercy of the scheduler.  The
    /// minimum over a few repetitions is the standard robust estimator of
    /// the true cost.
    const REPS: usize = 5;
    fn best<S>(
        build: impl Fn() -> S,
        drain: impl Fn(&mut S) -> usize,
    ) -> crate::measure::DrainStats {
        (0..REPS)
            .map(|_| measure_drain(&build, &drain))
            .min_by_key(|stats| stats.total_nanos)
            .expect("REPS > 0")
    }
    /// Fan-out of the hub-join workload: every hub joins `FAN` R-facts with
    /// `FAN` S-facts, so the join emits `FAN²` answers per hub while the
    /// database only grows by `2·FAN` facts — the answer-dense regime where
    /// counting without materialising pays (on answer-sparse inputs both
    /// sides are dominated by the shared structure materialisation and the
    /// ratio is ~1).
    const FAN: usize = 32;
    let mut table = Table::new(
        "E18",
        "Aggregate fast paths: non-materializing count/exists and scan kernels",
        &[
            "size",
            "join facts",
            "join answers",
            "drain µs",
            "count µs",
            "count speedup",
            "stream next() ns/ans",
            "fill_values ns/ans",
            "partial speedup",
            "scalar scan ns/row",
            "kernel scan ns/row",
            "agg equal",
        ],
    );
    let (omq, _) = university(&UniversityConfig {
        researchers: 1,
        ..Default::default()
    });
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");
    let skeleton = plan.skeleton().expect("tractable query");

    // The count workload: a two-atom path joined through shared hubs, with
    // no ontology (the aggregate walk is orthogonal to the chase).
    let join_query = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), S(y, z)").expect("parses");
    let join_omq = omq_chase::OntologyMediatedQuery::new(omq_chase::Ontology::new(), join_query)
        .expect("acyclic OMQ");
    let join_plan = QueryPlan::compile(&join_omq).expect("free-connex OMQ");

    let mut count_speedup_at_max = 0.0;
    let mut partial_speedup_at_max = 0.0;
    let mut scalar_at_max = 0.0;
    let mut kernel_at_max = 0.0;
    for researchers in university_sizes(quick) {
        let (_, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let instance = plan.execute(&db).expect("guarded OMQ");

        // The hub-join database for the count comparison.
        let hubs = (researchers / 50).max(2);
        let mut join_builder = omq_data::Database::builder(join_omq.data_schema().clone());
        for h in 0..hubs {
            for i in 0..FAN {
                join_builder = join_builder
                    .fact("R", [format!("a{h}_{i}"), format!("h{h}")])
                    .fact("S", [format!("h{h}"), format!("c{h}_{i}")]);
            }
        }
        let join_db = join_builder.build().expect("schema fits");
        let join_facts = join_db.len();
        let join_instance = join_plan.execute(&join_db).expect("free-connex OMQ");

        // Drain-and-count: the only way to count before `count()` existed —
        // materialise every answer just to throw it away.
        let drain = best(
            || (),
            |_| {
                let mut n = 0usize;
                for answer in join_instance
                    .answers(Semantics::Complete)
                    .expect("tractable")
                {
                    std::hint::black_box(&answer);
                    n += 1;
                }
                n
            },
        );
        // The counting walk over the same structure: no tuples, the leaf
        // level collapses to CSR-length sums.
        let counted = best(
            || (),
            |_| join_instance.count(Semantics::Complete).expect("tractable") as usize,
        );
        // Correctness column: on both workloads, the aggregates agree with
        // the stream on every semantics (the wildcard ones count through
        // the minimality merge).
        let agg_equal = [&instance, &join_instance].into_iter().all(|inst| {
            Semantics::ALL.iter().all(|&sem| {
                let stream_count = inst.answers(sem).expect("tractable").count() as u64;
                inst.count(sem).expect("tractable") == stream_count
                    && inst.exists(sem).expect("tractable") == (stream_count > 0)
            })
        }) && counted.answers == drain.answers;

        // Partial emission: per-answer owned pulls through the answer
        // stream (the only pre-`fill_values` consumption path, and what
        // `count(MinimalPartial)` replaced internally) versus the
        // allocation-free batched emission straight off the enumerator over
        // the instance's chased shard (the raw database would miss every
        // chase-derived wildcard answer).  The stream is warmed — built and
        // first-pulled inside the untimed build closure — because it defers
        // per-shard preprocessing to the first pull; E17's stream-level
        // partial ratio was blind to the per-answer constant precisely
        // because unwarmed drains bury it under that preprocessing.  What
        // remains per answer on the stream side is the traversal plus the
        // merge offer, the `PartialTuple` allocation, and the `Answer`
        // wrapper — the costs the borrowed-scratch batch entry point
        // eliminates.
        let shards = instance.shards();
        assert_eq!(shards.len(), 1, "sequential execute yields one shard");
        let partial_next = best(
            || {
                let mut stream = instance
                    .answers(Semantics::MinimalPartial)
                    .expect("tractable");
                let warmed = usize::from(stream.next().is_some());
                (stream, warmed)
            },
            |(stream, warmed)| {
                let mut n = *warmed;
                for answer in stream {
                    std::hint::black_box(&answer);
                    n += 1;
                }
                n
            },
        );
        let partial_batch = best(
            || PartialEnumerator::with_skeleton(skeleton, &shards[0]).expect("tractable"),
            |cursor| {
                let mut n = 0usize;
                loop {
                    let got = cursor.fill_values(BATCH, |values| {
                        std::hint::black_box(values);
                    });
                    n += got;
                    if got < BATCH {
                        break;
                    }
                }
                n
            },
        );

        // Scan kernels on a real column: gather the rows matching one value
        // of `HasOffice[0]` — the branchy scalar push loop the extension
        // scans used to run, against `kernels::select_eq`'s chunked
        // count-then-gather passes.
        let columnar = db.columnar();
        let rel = db.schema().relation_id("HasOffice").expect("schema");
        let cols = columnar.rel_columns(rel).expect("non-empty relation");
        let col = cols.column(0);
        let needle = *col.last().expect("non-empty column");
        let scalar_scan = best(Vec::<u32>::new, |out| {
            let mut scanned = 0usize;
            for _ in 0..SCAN_ROUNDS {
                out.clear();
                for (row, value) in col.iter().enumerate() {
                    if *value == needle {
                        out.push(row as u32);
                    }
                }
                std::hint::black_box(&out);
                scanned += col.len();
            }
            scanned
        });
        let kernel_scan = best(Vec::<u32>::new, |out| {
            let mut scanned = 0usize;
            for _ in 0..SCAN_ROUNDS {
                omq_data::kernels::select_eq(col, needle, out);
                std::hint::black_box(&out);
                scanned += col.len();
            }
            scanned
        });

        let count_speedup = drain.total_nanos as f64 / counted.total_nanos.max(1) as f64;
        let partial_speedup =
            partial_next.per_answer_nanos() / partial_batch.per_answer_nanos().max(1e-9);
        let equal = agg_equal && partial_next.answers == partial_batch.answers && {
            let mut scalar_rows = Vec::new();
            for (row, value) in col.iter().enumerate() {
                if *value == needle {
                    scalar_rows.push(row as u32);
                }
            }
            let mut kernel_rows = Vec::new();
            omq_data::kernels::select_eq(col, needle, &mut kernel_rows);
            scalar_rows == kernel_rows
        };

        count_speedup_at_max = count_speedup;
        partial_speedup_at_max = partial_speedup;
        scalar_at_max = scalar_scan.per_answer_nanos();
        kernel_at_max = kernel_scan.per_answer_nanos();
        table.push_row(vec![
            researchers.to_string(),
            join_facts.to_string(),
            drain.answers.to_string(),
            format!("{:.0}", drain.total_nanos as f64 / 1e3),
            format!("{:.0}", counted.total_nanos as f64 / 1e3),
            format!("{count_speedup:.2}"),
            format!("{:.1}", partial_next.per_answer_nanos()),
            format!("{:.1}", partial_batch.per_answer_nanos()),
            format!("{partial_speedup:.2}"),
            format!("{:.2}", scalar_scan.per_answer_nanos()),
            format!("{:.2}", kernel_scan.per_answer_nanos()),
            equal.to_string(),
        ]);
    }
    table.push_metric("batch_size", BATCH as f64);
    table.push_metric("scan_rounds", SCAN_ROUNDS as f64);
    // The acceptance gates: counting beats drain-and-count ≥2× and batched
    // borrowed emission beats per-tuple materialisation ≥1.5×, both at the
    // largest database.
    table.push_metric("count_speedup_at_max", count_speedup_at_max);
    table.push_metric("partial_batch_speedup_at_max", partial_speedup_at_max);
    table.push_metric("scalar_scan_ns_per_row", scalar_at_max);
    table.push_metric("vector_scan_ns_per_row", kernel_at_max);
    table.push_metric(
        "scan_speedup_at_max",
        scalar_at_max / kernel_at_max.max(1e-9),
    );
    table
}

/// E19 — the network front end under load: closed-loop fetch latency,
/// sustained request throughput, pinned-cursor isolation under a concurrent
/// commit writer, and post-commit time-to-first-page — all over real TCP.
///
/// Each size starts a fresh [`omq_server::Server`] on an ephemeral loopback
/// port, registers the office OMQ over the wire, seeds facts through wire
/// commits, and then drives three phases from a blocking client:
///
/// 1. **Closed loop** — drain the cursor page by page (`k` = `PAGE`),
///    re-opening until at least `MIN_FETCHES` fetch round-trips have been
///    timed.  Each fetch pays the wire codec, the event loop's scheduling
///    (up to one `IDLE_SLEEP` of worker latency) and the `O(k)`
///    `next_batch` — so p50 tracks the protocol constant and p99 the
///    scheduler tail.  QPS counts fetches over the whole loop, opens and
///    closes included, which makes it a conservative sustained-rate figure.
/// 2. **Concurrent writer** — pin a snapshot, open an in-process reference
///    stream at the same snapshot *before* any concurrent commit, then page
///    the pinned wire cursor while a second connection commits
///    `WRITER_ROUNDS` transactions.  The `equal` column is the acceptance
///    gate: the paged wire sequence must be byte-identical to the reference
///    drain (both rendered through `render_answer`), i.e. the cursor
///    replays exactly its pinned epoch no matter what commits land
///    mid-enumeration.  Fetch latencies in this phase are reported
///    separately (`writer p99`): they include write-lock contention from
///    the commit path.
/// 3. **Post-commit time-to-first-page** — commit a small delta, then time
///    `open_cursor` + first `fetch` at the new head.  The serving engine's
///    warm-instance refresh makes this delta-proportional, and the wire
///    must not lose that: the metric is the minimum over a few repetitions
///    (each commits its own delta, so every rep really pays a refresh).
///
/// Latency figures from a 1-CPU container are dominated by scheduling, not
/// by the enumeration constant — the trajectory gates on these metrics use
/// deliberately loose tolerances and the real acceptance gate is
/// `answers_equal`.
pub fn e19_network_serving(quick: bool) -> Table {
    use omq_serve::{Request, ServingEngine};
    use omq_server::{render_answer, Client, QueryTarget, Server, ServerConfig, TxnOp};
    use std::time::Duration;

    /// Page size for every timed fetch: large enough that the `O(k)` body
    /// is visible, small enough that a drain takes several round-trips.
    const PAGE: u64 = 16;
    const ONTOLOGY: &str = "Researcher(x) -> exists y. HasOffice(x, y)\n\
                            HasOffice(x, y) -> Office(y)\n\
                            Office(x) -> exists y. InBuilding(x, y)";
    const QUERY: &str = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";
    const TTFP_REPS: usize = 3;
    let min_fetches: usize = if quick { 128 } else { 1024 };
    let writer_rounds: usize = if quick { 8 } else { 32 };
    let sizes: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![128, 256, 512, 1024]
    };

    fn percentile(sorted: &[u64], p: f64) -> u64 {
        debug_assert!(!sorted.is_empty());
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
    /// The seed workload: every researcher answers under minimal-partial
    /// semantics (the ontology invents offices and buildings), half have a
    /// known office, a quarter a known building — so answers mix constants
    /// and wildcards and the answer count scales with `n`.
    fn seed_ops(n: usize) -> Vec<TxnOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(TxnOp::Insert {
                relation: "Researcher".into(),
                tuple: vec![format!("r{i:04}")],
            });
            if i % 2 == 0 {
                ops.push(TxnOp::Insert {
                    relation: "HasOffice".into(),
                    tuple: vec![format!("r{i:04}"), format!("o{i:04}")],
                });
            }
            if i % 4 == 0 {
                ops.push(TxnOp::Insert {
                    relation: "InBuilding".into(),
                    tuple: vec![format!("o{i:04}"), format!("b{}", i / 8)],
                });
            }
        }
        ops
    }

    let mut table = Table::new(
        "E19",
        "Network front end: wire pagination latency, throughput, pinned isolation",
        &[
            "size",
            "answers",
            "fetches",
            "p50 µs",
            "p99 µs",
            "qps",
            "writer p99 µs",
            "ttfp µs",
            "equal",
        ],
    );

    let mut p50_at_max = 0.0;
    let mut p99_at_max = 0.0;
    let mut qps_at_max = 0.0;
    let mut ttfp_at_max = 0.0;
    let mut all_equal = true;
    for n in sizes {
        let server = Server::start(
            ServingEngine::new(1),
            ServerConfig {
                addr: "127.0.0.1:0".parse().expect("loopback addr"),
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(120)))
            .expect("timeout");
        client
            .register_query("offices", ONTOLOGY, QUERY)
            .expect("register over the wire");
        client.commit(seed_ops(n)).expect("seed commit");

        // Phase 1: the closed loop.  Time every fetch round-trip; QPS is
        // fetches over wall clock with the open/close overhead included.
        let mut latencies: Vec<u64> = Vec::with_capacity(min_fetches + 64);
        let mut answers = 0usize;
        let loop_start = Instant::now();
        while latencies.len() < min_fetches {
            let cursor = client
                .open_cursor(
                    QueryTarget::Name("offices".into()),
                    Semantics::MinimalPartial,
                    None,
                )
                .expect("open cursor");
            let mut drained = 0usize;
            loop {
                let t = Instant::now();
                let page = client.fetch(cursor, PAGE).expect("fetch");
                latencies.push(t.elapsed().as_nanos() as u64);
                drained += page.answers.len();
                std::hint::black_box(&page.answers);
                if page.done {
                    break;
                }
            }
            client.close_cursor(cursor).expect("close cursor");
            answers = drained;
        }
        let elapsed = loop_start.elapsed();
        let qps = latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        latencies.sort_unstable();
        let p50_us = percentile(&latencies, 50.0) as f64 / 1e3;
        let p99_us = percentile(&latencies, 99.0) as f64 / 1e3;

        // Phase 2: pinned cursor under a concurrent commit writer.  The
        // reference stream is opened at the same snapshot before the writer
        // starts, so both drains come from identical engine state and the
        // comparison is exact, not just multiset-equal.
        let pinned = client.pin().expect("pin");
        let shared = server.shared_engine();
        let (snap, reference_stream) = {
            let engine = shared.engine.read().expect("engine lock");
            let snap = engine.snapshot();
            assert_eq!(snap.epoch(), pinned.epoch, "pin and snapshot agree");
            let stream = engine
                .serve_stream(
                    &Request::by_name("offices", Semantics::MinimalPartial).at(snap.clone()),
                )
                .expect("reference stream");
            (snap, stream)
        };
        let pinned_cursor = client
            .open_cursor(
                QueryTarget::Name("offices".into()),
                Semantics::MinimalPartial,
                Some(pinned.handle),
            )
            .expect("open pinned cursor");
        let addr = server.local_addr();
        let writer = std::thread::spawn(move || {
            let mut writer = Client::connect(addr).expect("writer connect");
            for round in 0..writer_rounds {
                writer
                    .insert_all(
                        "Researcher",
                        (0..4).map(|i| vec![format!("w{round:02}_{i}")]),
                    )
                    .expect("concurrent commit");
            }
            writer.bye().expect("writer bye");
        });
        let mut wire_answers = Vec::new();
        let mut writer_latencies: Vec<u64> = Vec::new();
        loop {
            let t = Instant::now();
            let page = client.fetch(pinned_cursor, PAGE / 2).expect("pinned fetch");
            writer_latencies.push(t.elapsed().as_nanos() as u64);
            wire_answers.extend(page.answers);
            if page.done {
                break;
            }
        }
        writer.join().expect("writer thread");
        let reference: Vec<Vec<String>> = reference_stream
            .map(|answer| render_answer(&answer, snap.database()))
            .collect();
        let equal = wire_answers == reference && !wire_answers.is_empty();
        writer_latencies.sort_unstable();
        let writer_p99_us = percentile(&writer_latencies, 99.0) as f64 / 1e3;
        client.close_cursor(pinned_cursor).expect("close pinned");

        // Phase 3: post-commit time-to-first-page.  Every rep commits its
        // own delta so each timed open really pays a head refresh.
        let mut ttfp_best = u64::MAX;
        for rep in 0..TTFP_REPS {
            client
                .insert_all("Researcher", [vec![format!("ttfp{n}_{rep}")]])
                .expect("delta commit");
            let t = Instant::now();
            let cursor = client
                .open_cursor(
                    QueryTarget::Name("offices".into()),
                    Semantics::MinimalPartial,
                    None,
                )
                .expect("open at head");
            let page = client.fetch(cursor, PAGE).expect("first page");
            ttfp_best = ttfp_best.min(t.elapsed().as_nanos() as u64);
            assert!(!page.answers.is_empty(), "head cursor has answers");
            client.close_cursor(cursor).expect("close");
        }
        let ttfp_us = ttfp_best as f64 / 1e3;
        client.bye().expect("bye");
        server.shutdown();

        p50_at_max = p50_us;
        p99_at_max = p99_us;
        qps_at_max = qps;
        ttfp_at_max = ttfp_us;
        all_equal = all_equal && equal;
        table.push_row(vec![
            n.to_string(),
            answers.to_string(),
            latencies.len().to_string(),
            format!("{p50_us:.0}"),
            format!("{p99_us:.0}"),
            format!("{qps:.0}"),
            format!("{writer_p99_us:.0}"),
            format!("{ttfp_us:.0}"),
            equal.to_string(),
        ]);
    }
    table.push_metric("page_k", PAGE as f64);
    table.push_metric("fetch_p50_us_at_max", p50_at_max);
    table.push_metric("fetch_p99_us_at_max", p99_at_max);
    table.push_metric("qps_at_max", qps_at_max);
    table.push_metric("post_commit_ttfp_us_at_max", ttfp_at_max);
    // The acceptance gate, exported for the JSON validation in CI: 1.0 iff
    // every size's pinned wire drain was byte-identical to the in-process
    // reference at the pinned epoch.
    table.push_metric("answers_equal", if all_equal { 1.0 } else { 0.0 });
    table
}

/// E20 — distributed execution over real worker **processes**: end-to-end
/// speedup versus worker count on the component-rich clustered university
/// workload, shard-shipping volume, work-stealing placement, and fault
/// recovery (a worker killed mid-shard).
///
/// The worker fleet is this very harness binary: `main` calls
/// `omq_cluster::maybe_run_worker()` first thing, so when the coordinator
/// spawns `current_exe()` with the cluster environment variables set, the
/// child becomes a worker instead of re-running the experiments.
///
/// Every row drains the full distributed `AnswerStream`
/// (minimal-partial semantics) and compares the answer multiset against the
/// sequential in-process run — that `answers equal` column, including the
/// kill row, is the acceptance gate exported as the `answers_equal` metric.
/// Wall-clock times include everything a deployment would pay: process
/// spawn, plan compilation on each worker, fact shipping, evaluation,
/// page parsing, and the cross-shard reduce.  `speedup` is measured against
/// the 1-worker distributed run (isolating scaling from the fixed wire
/// overhead, which `distribution_overhead_x` reports separately against the
/// sequential engine); on a 1-CPU CI runner the processes share one core,
/// so the speedup magnitudes are only meaningful on multicore hosts and the
/// trajectory gate on them is deliberately loose.
///
/// The kill row re-runs the 2-worker configuration with small pages and a
/// fault injected into worker 0 (connection dropped cold after 2 pages):
/// the coordinator must detect the death, requeue the unacknowledged shard
/// on the survivor, and still produce exactly the sequential answers —
/// `kill_reassignments` records how many shards were replayed.
pub fn e20_distributed_execution(quick: bool) -> Table {
    use omq_cluster::{execute, ClusterConfig, ClusterStats, Kill, WorkerSpawn};
    use std::collections::BTreeMap;
    use std::time::Duration;

    let gen_config = if quick {
        ClusteredConfig {
            clusters: 8,
            researchers_per_cluster: 125,
            ..Default::default()
        }
    } else {
        ClusteredConfig {
            clusters: 16,
            researchers_per_cluster: 500,
            ..Default::default()
        }
    };
    let (omq, db) = clustered_university(&gen_config);
    let plan = QueryPlan::compile(&omq).expect("guarded OMQ");
    // Warm the shared chase memo (bag-type tables are data-independent).
    let _ = plan.execute(&db).expect("guarded OMQ");
    let start = Instant::now();
    let instance = plan.execute(&db).expect("guarded OMQ");
    let mut stream = instance
        .answers(Semantics::MinimalPartial)
        .expect("tractable query");
    let mut baseline: BTreeMap<Answer, usize> = BTreeMap::new();
    for answer in &mut stream {
        *baseline.entry(answer).or_default() += 1;
    }
    let sequential_micros = start.elapsed().as_micros().max(1);

    let spawn = WorkerSpawn::Command {
        program: std::env::current_exe().expect("current executable"),
        args: Vec::new(),
    };
    let run_once = |workers: usize,
                    kill: Option<Kill>,
                    page_answers: Option<usize>|
     -> (BTreeMap<Answer, usize>, ClusterStats, u128) {
        let config = ClusterConfig {
            workers,
            worker_timeout: Duration::from_secs(120),
            spawn: spawn.clone(),
            kill,
            page_answers,
            ..ClusterConfig::default()
        };
        let start = Instant::now();
        let run = execute(
            crate::generators::UNIVERSITY_ONTOLOGY_TEXT,
            crate::generators::UNIVERSITY_QUERY_TEXT,
            &db,
            Semantics::MinimalPartial,
            &config,
        )
        .expect("cluster run starts");
        let mut stream = run.stream;
        let mut counts: BTreeMap<Answer, usize> = BTreeMap::new();
        for answer in &mut stream {
            *counts.entry(answer).or_default() += 1;
        }
        assert!(
            stream.error().is_none(),
            "cluster stream failed: {:?}",
            stream.error()
        );
        let micros = start.elapsed().as_micros().max(1);
        (counts, run.handle.finish(), micros)
    };

    let mut table = Table::new(
        "E20",
        "Distributed execution: speedup over worker processes, shipping, fault recovery",
        &[
            "workers",
            "shards",
            "wall µs",
            "speedup",
            "answers",
            "shipped KiB",
            "steals",
            "reassigned",
            "kill",
            "answers equal",
        ],
    );

    let mut all_equal = true;
    let mut wall_1_worker = 1u128;
    let mut push_row = |table: &mut Table,
                        workers: usize,
                        counts: &BTreeMap<Answer, usize>,
                        stats: ClusterStats,
                        micros: u128,
                        speedup_base: u128,
                        killed: bool| {
        let equal = *counts == baseline;
        all_equal = all_equal && equal;
        table.push_row(vec![
            workers.to_string(),
            stats.shards.to_string(),
            micros.to_string(),
            format!("{:.2}x", speedup_base as f64 / micros as f64),
            counts.values().sum::<usize>().to_string(),
            format!("{:.0}", stats.shipped_bytes as f64 / 1024.0),
            stats.steals.to_string(),
            stats.reassignments.to_string(),
            killed.to_string(),
            equal.to_string(),
        ]);
        equal
    };

    let mut shipped_at_max = 0.0;
    let mut steals_at_max = 0.0;
    for workers in [1usize, 2, 4] {
        let (counts, stats, micros) = run_once(workers, None, None);
        if workers == 1 {
            wall_1_worker = micros;
            table.push_metric("wall_micros_1_worker", micros as f64);
            table.push_metric(
                "distribution_overhead_x",
                micros as f64 / sequential_micros as f64,
            );
        } else {
            table.push_metric(
                &format!("speedup_{workers}_workers"),
                wall_1_worker as f64 / micros as f64,
            );
        }
        if workers == 4 {
            shipped_at_max = stats.shipped_bytes as f64;
            steals_at_max = stats.steals as f64;
        }
        push_row(
            &mut table,
            workers,
            &counts,
            stats,
            micros,
            wall_1_worker,
            false,
        );
    }

    // The fault row: kill worker 0 after two small pages, mid-shard.
    let (counts, stats, micros) = run_once(
        2,
        Some(Kill {
            worker: 0,
            after_pages: 2,
        }),
        Some(32),
    );
    assert_eq!(stats.worker_failures, 1, "kill row stats: {stats:?}");
    push_row(&mut table, 2, &counts, stats, micros, wall_1_worker, true);
    table.push_metric("kill_reassignments", stats.reassignments as f64);

    table.push_metric("sequential_exec_micros", sequential_micros as f64);
    table.push_metric("input_facts", db.len() as f64);
    table.push_metric("shipped_bytes_at_max", shipped_at_max);
    table.push_metric("steals_at_max", steals_at_max);
    // The acceptance gate: 1.0 iff every row — the kill row included —
    // reproduced the sequential answer multiset exactly.
    table.push_metric("answers_equal", if all_equal { 1.0 } else { 0.0 });
    table
}

/// Runs one experiment by identifier.
pub fn run_experiment(id: &str, quick: bool) -> Option<Table> {
    match id.to_ascii_uppercase().as_str() {
        "E1" => Some(e1_figure1()),
        "E2" => Some(e2_qchase_scaling(quick)),
        "E3" => Some(e3_complete_enum(quick)),
        "E4" => Some(e4_all_testing(quick)),
        "E5" => Some(e5_partial_enum(quick)),
        "E6" => Some(e6_multi_enum(quick)),
        "E7" => Some(e7_triangle(quick)),
        "E8" => Some(e8_bmm(quick)),
        "E9" => Some(e9_running_example()),
        "E10" => Some(e10_baseline(quick)),
        "E11" => Some(e11_ablation(quick)),
        "E12" => Some(e12_plan_columnar(quick)),
        "E13" => Some(e13_parallel_speedup(quick)),
        "E14" => Some(e14_cursor_pagination(quick)),
        "E15" => Some(e15_live_store(quick)),
        "E16" => Some(e16_incremental_maintenance(quick)),
        "E17" => Some(e17_batched_enumeration(quick)),
        "E18" => Some(e18_aggregate_fast_paths(quick)),
        "E19" => Some(e19_network_serving(quick)),
        "E20" => Some(e20_distributed_execution(quick)),
        _ => None,
    }
}

/// Runs the full suite.
pub fn run_all(quick: bool) -> Vec<Table> {
    [
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14",
        "E15", "E16", "E17", "E18", "E19", "E20",
    ]
    .iter()
    .filter_map(|id| run_experiment(id, quick))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_table_matches_paper() {
        let table = e1_figure1();
        assert_eq!(table.rows.len(), 5);
        // ac column per row: true, true, false, false, false
        let ac: Vec<&str> = table.rows.iter().map(|r| r[1].as_str()).collect();
        assert_eq!(ac, vec!["true", "true", "false", "false", "false"]);
        // fc column: true, false, true, false, false
        let fc: Vec<&str> = table.rows.iter().map(|r| r[2].as_str()).collect();
        assert_eq!(fc, vec!["true", "false", "true", "false", "false"]);
        // wac column: true, true, true, true, false
        let wac: Vec<&str> = table.rows.iter().map(|r| r[3].as_str()).collect();
        assert_eq!(wac, vec!["true", "true", "true", "true", "false"]);
        assert!(table.render().contains("E1"));
    }

    #[test]
    fn running_example_table() {
        let table = e9_running_example();
        assert_eq!(table.rows.len(), 4);
        assert!(table.rows[0][1].contains("(mary,room1,main1)"));
        assert!(table.rows[1][1].contains("(mike,*,*)"));
        assert!(table.rows[2][1].contains("(mike,*1,*2)"));
    }

    #[test]
    fn small_scaling_tables_have_rows() {
        // Use tiny sizes through the quick flag to keep the test fast.
        let table = e2_qchase_scaling(true);
        assert!(table.rows.len() >= 4);
        let table = e10_baseline(true);
        assert!(table.rows.iter().all(|r| r[4] == "true"));
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("E99", true).is_none());
    }

    #[test]
    fn e13_parallel_agrees_and_exports_metrics() {
        let table = e13_parallel_speedup(true);
        assert_eq!(table.rows.len(), 4);
        // Every thread count reproduces the sequential answer multisets.
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        // The same number of answers at every thread count.
        let answers: Vec<&str> = table.rows.iter().map(|r| r[4].as_str()).collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"speedup_4_threads"));
        assert!(names.contains(&"delay_ratio_4_threads_vs_1"));
        assert!(names.contains(&"components"));
    }

    #[test]
    fn e15_sessions_are_isolated_and_export_metrics() {
        let table = e15_live_store(true);
        assert_eq!(table.rows.len(), 4);
        // The acceptance gate: pinned snapshots unchanged by the late
        // commit, fresh snapshots equal to the from-scratch reference.
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"ingest_facts_per_sec"));
        assert!(names.contains(&"post_commit_ttfa_slope_us_per_fact"));
        assert!(names.contains(&"facts_per_txn"));
    }

    #[test]
    fn e16_refresh_is_incremental_and_equivalent() {
        let table = e16_incremental_maintenance(true);
        assert_eq!(table.rows.len(), 4);
        // The acceptance gate: the refresh reused shards and agrees with the
        // from-scratch evaluation on every semantics.
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        // Every row spliced at least one untouched shard in by pointer.
        assert!(table.rows.iter().all(|r| r[3] != "0"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"post_commit_refresh_slope_us_per_fact"));
        assert!(names.contains(&"full_rebuild_slope_us_per_fact"));
        assert!(names.contains(&"ttfa_speedup_at_max"));
        assert!(names.contains(&"delta_facts"));
    }

    #[test]
    fn e17_batched_drains_agree_and_export_metrics() {
        let table = e17_batched_enumeration(true);
        assert_eq!(table.rows.len(), 4);
        // The correctness gate: batched and unbatched drains produce the
        // same number of answers on both semantics, at every size.  (The
        // ≥1.5× speedup gate is asserted on the release-build JSON report,
        // not here — debug-build ratios are meaningless.)
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"batch_speedup_at_max"));
        assert!(names.contains(&"arena_staging_speedup_at_max"));
        assert!(names.contains(&"unbatched_ns_per_answer_at_max"));
        assert!(names.contains(&"batched_ns_per_answer_at_max"));
        assert!(names.contains(&"batch_size"));
    }

    #[test]
    fn e18_aggregates_agree_and_export_metrics() {
        let table = e18_aggregate_fast_paths(true);
        assert_eq!(table.rows.len(), 4);
        // The correctness gate: at every size, count/exists agree with the
        // stream on all three semantics, the batched and per-tuple partial
        // drains yield the same number of answers, and the kernel gather
        // selects exactly the scalar loop's rows.  (The ≥2×/≥1.5× speedup
        // gates are asserted on the release-build JSON report, not here —
        // debug-build ratios are meaningless.)
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"count_speedup_at_max"));
        assert!(names.contains(&"partial_batch_speedup_at_max"));
        assert!(names.contains(&"scalar_scan_ns_per_row"));
        assert!(names.contains(&"vector_scan_ns_per_row"));
        assert!(names.contains(&"scan_speedup_at_max"));
    }

    #[test]
    fn e19_wire_drains_agree_and_export_metrics() {
        let table = e19_network_serving(true);
        assert_eq!(table.rows.len(), 3);
        // The acceptance gate: at every size, the pinned wire cursor's
        // paged sequence is byte-identical to the in-process reference
        // drain at the pinned epoch, under a concurrent commit writer.
        // (Latency and QPS figures are machine-bound; their sanity checks
        // run on the release-build JSON report in CI, not here.)
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"fetch_p50_us_at_max"));
        assert!(names.contains(&"fetch_p99_us_at_max"));
        assert!(names.contains(&"qps_at_max"));
        assert!(names.contains(&"post_commit_ttfp_us_at_max"));
        assert!(names.contains(&"answers_equal"));
        let answers_equal = table
            .metrics
            .iter()
            .find(|(k, _)| k == "answers_equal")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(answers_equal, 1.0);
    }

    #[test]
    fn e12_plan_agrees_and_exports_metrics() {
        let table = e12_plan_columnar(true);
        assert!(table.rows.len() >= 4);
        // The plan path agrees with the fresh engine (and the dense loop
        // with the hash loop) on every database.
        let equal_col = table.headers.len() - 1;
        assert!(table.rows.iter().all(|r| r[equal_col] == "true"));
        let names: Vec<&str> = table.metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"plan_compile_micros"));
        assert!(names.contains(&"dense_delay_slope_ns_per_fact"));
        assert!(names.contains(&"amortisation_speedup"));
    }
}
