//! The perf-trajectory lab: persists every harness run keyed by commit digest
//! and config fingerprint, and gates CI on regressions of the metrics that
//! encode the paper's guarantees.
//!
//! The harness already writes one `BENCH_<exp>.json` per experiment (see
//! [`crate::report`]); this module closes the loop across commits:
//!
//! * [`collect_run`] reads the gated experiments' reports from a directory
//!   and condenses them into one [`RunRecord`] — every exported metric, keyed
//!   `"<exp>/<metric>"`, plus the commit digest (read straight from
//!   `.git/HEAD`, no subprocess) and the config fingerprint (quick vs full
//!   sizes and the gate-set version);
//! * [`record`] appends the record to `bench_history/history-<fp>.jsonl` and,
//!   on request, promotes it to `bench_history/baseline-<fp>.json`;
//! * [`check`] diffs a fresh run against the stored baseline over the
//!   [`gated_metrics`] and reports every regression beyond the metric's
//!   tolerance — the `trajectory` binary turns a non-empty report into a
//!   nonzero exit, which is the CI gate.
//!
//! Everything is hand-rolled JSON (this build environment has no real
//! `serde`): the writer reuses [`crate::report::json_escape`], and the
//! reader is the minimal recursive-descent parser in [`parse_json`] — enough
//! for the documents this crate itself produces.

use crate::report::json_escape;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Whether a gated metric regresses by growing or by shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Timings, slopes: a larger value is a regression.
    LowerIsBetter,
    /// Speedups: a smaller value is a regression.
    HigherIsBetter,
}

/// One metric the trajectory lab gates CI on.
#[derive(Debug, Clone, Copy)]
pub struct GatedMetric {
    /// Experiment identifier, e.g. `"E12"`.
    pub experiment: &'static str,
    /// Metric name inside the experiment's JSON report.
    pub metric: &'static str,
    /// Which way a regression points.
    pub direction: Direction,
    /// Relative change (percent, against the baseline) tolerated before the
    /// gate trips.  Timing metrics on shared CI runners are noisy, so the
    /// tolerances are deliberately generous — the gate exists to catch
    /// step-change regressions (an accidental `O(|D|)` in the hot loop, a
    /// lost amortisation), not single-digit drift.
    pub tolerance_pct: f64,
    /// Absolute change that must *also* be exceeded before the gate trips —
    /// keeps near-zero baselines (e.g. slopes ≈ 0) from turning measurement
    /// noise into huge relative changes.
    pub abs_floor: f64,
}

/// The gated metrics: the enumeration-delay constants (E12), the pagination
/// constants (E14), the incremental-maintenance slope (E16), the batching
/// amortisation (E17/E18), the network front end's serving figures plus
/// its pinned-isolation gate (E19), and the distributed scaling figure plus
/// its answers-equal gate including the killed-worker row (E20).
pub const GATES: &[GatedMetric] = &[
    GatedMetric {
        experiment: "E12",
        metric: "iter_mean_ns_at_max",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 100.0,
        abs_floor: 100.0,
    },
    GatedMetric {
        experiment: "E12",
        metric: "iter_p99_ns_at_max",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 150.0,
        abs_floor: 200.0,
    },
    GatedMetric {
        experiment: "E14",
        metric: "ttfa_max_nanos",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 100.0,
        abs_floor: 2_000.0,
    },
    GatedMetric {
        experiment: "E14",
        metric: "page_mean_ns_at_max",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 100.0,
        abs_floor: 100.0,
    },
    GatedMetric {
        experiment: "E16",
        metric: "post_commit_refresh_slope_us_per_fact",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 100.0,
        abs_floor: 0.05,
    },
    GatedMetric {
        experiment: "E17",
        metric: "batch_speedup_at_max",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 50.0,
        abs_floor: 1.0,
    },
    GatedMetric {
        experiment: "E17",
        metric: "partial_batch_speedup_at_max",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 50.0,
        abs_floor: 1.0,
    },
    GatedMetric {
        experiment: "E18",
        metric: "count_speedup_at_max",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 50.0,
        abs_floor: 1.0,
    },
    GatedMetric {
        experiment: "E18",
        metric: "partial_batch_speedup_at_max",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 50.0,
        abs_floor: 1.0,
    },
    // E19's latency figures from a 1-CPU CI runner are scheduling-bound
    // (the event loop's idle sleep dominates a round trip), so the
    // tolerances are very loose — these gates catch step changes like a
    // lost warm-refresh path or an accidental full-drain per page, not
    // jitter.
    GatedMetric {
        experiment: "E19",
        metric: "fetch_p50_us_at_max",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 200.0,
        abs_floor: 1_000.0,
    },
    GatedMetric {
        experiment: "E19",
        metric: "qps_at_max",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 75.0,
        abs_floor: 100.0,
    },
    GatedMetric {
        experiment: "E19",
        metric: "post_commit_ttfp_us_at_max",
        direction: Direction::LowerIsBetter,
        tolerance_pct: 200.0,
        abs_floor: 3_000.0,
    },
    // The isolation gate is exact (1.0 or 0.0): any drop trips it.
    GatedMetric {
        experiment: "E19",
        metric: "answers_equal",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 0.0,
        abs_floor: 0.5,
    },
    // E20's scaling figure from a 1-CPU CI runner is near 1.0 (four worker
    // processes share one core), so the gate is loose and only catches a
    // collapse — e.g. the work-stealing queue serialising every shard onto
    // one worker.
    GatedMetric {
        experiment: "E20",
        metric: "speedup_4_workers",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 75.0,
        abs_floor: 0.5,
    },
    // Exact gate: every E20 row — including the killed-worker row — must
    // reproduce the sequential answer multiset.
    GatedMetric {
        experiment: "E20",
        metric: "answers_equal",
        direction: Direction::HigherIsBetter,
        tolerance_pct: 0.0,
        abs_floor: 0.5,
    },
];

/// The gated metrics (see [`GATES`]).
pub fn gated_metrics() -> &'static [GatedMetric] {
    GATES
}

/// The experiments that must have been run for a trajectory record —
/// [`GATES`] deduplicated, in order.
pub fn gated_experiments() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for gate in GATES {
        if !out.contains(&gate.experiment) {
            out.push(gate.experiment);
        }
    }
    out
}

/// Version of the gate set; bumping it retires old baselines (the
/// fingerprint changes, so `check` reports "no baseline" instead of
/// comparing incomparable runs).
pub const GATE_SET_VERSION: u32 = 3;

/// The config fingerprint a run is keyed by: the size mode (quick vs full
/// sweeps measure different databases) and the gate-set version.
pub fn fingerprint(quick: bool) -> String {
    format!(
        "{}-v{GATE_SET_VERSION}",
        if quick { "quick" } else { "full" }
    )
}

/// One persisted harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Commit digest the run was produced at (`"unknown"` outside a git
    /// checkout).
    pub commit: String,
    /// Config fingerprint, see [`fingerprint`].
    pub fingerprint: String,
    /// Seconds since the Unix epoch when the record was collected.
    pub unix_time: u64,
    /// Every metric of every gated experiment, keyed `"<exp>/<metric>"`.
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    /// Serialises the record as a single JSON line.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| {
                let value = if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                };
                format!("\"{}\":{}", json_escape(k), value)
            })
            .collect();
        format!(
            "{{\"commit\":\"{}\",\"fingerprint\":\"{}\",\"unix_time\":{},\"metrics\":{{{}}}}}\n",
            json_escape(&self.commit),
            json_escape(&self.fingerprint),
            self.unix_time,
            metrics.join(",")
        )
    }

    /// Parses a record serialised by [`RunRecord::to_json`].
    pub fn from_json(s: &str) -> Result<RunRecord, String> {
        let doc = parse_json(s)?;
        let commit = doc
            .get("commit")
            .and_then(Json::as_str)
            .ok_or("missing `commit`")?
            .to_owned();
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing `fingerprint`")?
            .to_owned();
        let unix_time = doc.get("unix_time").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mut metrics = BTreeMap::new();
        if let Some(Json::Obj(entries)) = doc.get("metrics") {
            for (k, v) in entries {
                if let Some(x) = v.as_f64() {
                    metrics.insert(k.clone(), x);
                }
            }
        }
        Ok(RunRecord {
            commit,
            fingerprint,
            unix_time,
            metrics,
        })
    }
}

/// One gated metric that moved beyond its tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `"<exp>/<metric>"` key of the offending metric.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (`NaN` when the metric vanished from the run).
    pub current: f64,
    /// Relative change in percent (positive = grew).
    pub change_pct: f64,
    /// The tolerance that was exceeded.
    pub limit_pct: f64,
}

impl Regression {
    /// One human-readable line describing the regression.
    pub fn describe(&self) -> String {
        if self.current.is_nan() {
            return format!(
                "{}: metric missing from the current run (baseline {:.3})",
                self.key, self.baseline
            );
        }
        format!(
            "{}: {:.3} -> {:.3} ({:+.1}%, tolerance ±{:.0}%)",
            self.key, self.baseline, self.current, self.change_pct, self.limit_pct
        )
    }
}

/// Diffs `current` against `baseline` over the [`gated_metrics`] and returns
/// every regression beyond tolerance.  A gated metric missing from `current`
/// is itself a regression (a silently dropped gate must trip CI); one missing
/// from `baseline` is skipped (a gate introduced after the baseline).
pub fn check(baseline: &RunRecord, current: &RunRecord) -> Vec<Regression> {
    let mut out = Vec::new();
    for gate in GATES {
        let key = format!("{}/{}", gate.experiment, gate.metric);
        let Some(&base) = baseline.metrics.get(&key) else {
            continue;
        };
        let Some(&cur) = current.metrics.get(&key) else {
            out.push(Regression {
                key,
                baseline: base,
                current: f64::NAN,
                change_pct: f64::NAN,
                limit_pct: gate.tolerance_pct,
            });
            continue;
        };
        let delta = cur - base;
        let regressed = match gate.direction {
            Direction::LowerIsBetter => {
                delta > gate.abs_floor && cur > base * (1.0 + gate.tolerance_pct / 100.0)
            }
            Direction::HigherIsBetter => {
                -delta > gate.abs_floor && cur < base * (1.0 - gate.tolerance_pct / 100.0)
            }
        };
        if regressed {
            let change_pct = if base != 0.0 {
                delta / base * 100.0
            } else {
                f64::INFINITY
            };
            out.push(Regression {
                key,
                baseline: base,
                current: cur,
                change_pct,
                limit_pct: gate.tolerance_pct,
            });
        }
    }
    out
}

/// Reads the gated experiments' `BENCH_<exp>.json` reports from
/// `reports_dir` into one [`RunRecord`].  Every gated experiment's report
/// must exist — a missing file means the harness did not run the gated
/// suite, and comparing a partial run against the baseline would pass
/// vacuously.
pub fn collect_run(
    reports_dir: &Path,
    fingerprint: &str,
    commit: String,
    unix_time: u64,
) -> Result<RunRecord, String> {
    let mut metrics = BTreeMap::new();
    for exp in gated_experiments() {
        let path = reports_dir.join(format!("BENCH_{exp}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let Some(Json::Obj(entries)) = doc.get("metrics") else {
            return Err(format!("{}: no `metrics` object", path.display()));
        };
        for (name, value) in entries {
            if let Some(x) = value.as_f64() {
                metrics.insert(format!("{exp}/{name}"), x);
            }
        }
    }
    Ok(RunRecord {
        commit,
        fingerprint: fingerprint.to_owned(),
        unix_time,
        metrics,
    })
}

/// Reads the commit digest of `repo_root`'s checkout from `.git/HEAD`
/// directly (no `git` subprocess): a detached HEAD holds the digest, a
/// symbolic one is resolved through `.git/refs/...` or, failing that,
/// `.git/packed-refs`.  Returns `"unknown"` when anything is missing.
pub fn commit_digest(repo_root: &Path) -> String {
    let git = repo_root.join(".git");
    let Ok(head) = std::fs::read_to_string(git.join("HEAD")) else {
        return "unknown".to_owned();
    };
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return head.to_owned();
    };
    if let Ok(digest) = std::fs::read_to_string(git.join(refname)) {
        return digest.trim().to_owned();
    }
    if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
        for line in packed.lines() {
            if let Some(digest) = line.strip_suffix(refname) {
                return digest.trim().to_owned();
            }
        }
    }
    "unknown".to_owned()
}

/// Path of the committed baseline for a fingerprint.
pub fn baseline_path(history_dir: &Path, fingerprint: &str) -> PathBuf {
    history_dir.join(format!("baseline-{fingerprint}.json"))
}

/// Path of the append-only run history for a fingerprint.
pub fn history_path(history_dir: &Path, fingerprint: &str) -> PathBuf {
    history_dir.join(format!("history-{fingerprint}.jsonl"))
}

/// Loads the stored baseline for `fingerprint`, if any.
pub fn load_baseline(history_dir: &Path, fingerprint: &str) -> Result<Option<RunRecord>, String> {
    let path = baseline_path(history_dir, fingerprint);
    match std::fs::read_to_string(&path) {
        Ok(text) => RunRecord::from_json(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Appends `run` to the history (creating `history_dir` if needed) and
/// promotes it to the baseline when `set_baseline` is true or no baseline
/// exists yet for its fingerprint.  Returns whether the baseline was
/// (re)written.
pub fn record(history_dir: &Path, run: &RunRecord, set_baseline: bool) -> Result<bool, String> {
    std::fs::create_dir_all(history_dir)
        .map_err(|e| format!("cannot create {}: {e}", history_dir.display()))?;
    let hist = history_path(history_dir, &run.fingerprint);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&hist)
        .map_err(|e| format!("cannot open {}: {e}", hist.display()))?;
    file.write_all(run.to_json().as_bytes())
        .map_err(|e| format!("cannot append to {}: {e}", hist.display()))?;
    let base = baseline_path(history_dir, &run.fingerprint);
    if set_baseline || !base.exists() {
        std::fs::write(&base, run.to_json())
            .map_err(|e| format!("cannot write {}: {e}", base.display()))?;
        return Ok(true);
    }
    Ok(false)
}

/// A parsed JSON value — the minimal model needed to read the documents this
/// crate writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document (recursive descent over bytes; strings support the
/// escapes [`json_escape`] emits plus `\u` for BMP code points).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid UTF-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Table;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("omq_trajectory_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_with(metrics: &[(&str, f64)]) -> RunRecord {
        RunRecord {
            commit: "deadbeef".to_owned(),
            fingerprint: fingerprint(true),
            unix_time: 1_700_000_000,
            metrics: metrics.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    fn healthy_run() -> RunRecord {
        run_with(&[
            ("E12/iter_mean_ns_at_max", 500.0),
            ("E12/iter_p99_ns_at_max", 900.0),
            ("E14/ttfa_max_nanos", 20_000.0),
            ("E14/page_mean_ns_at_max", 800.0),
            ("E16/post_commit_refresh_slope_us_per_fact", 0.4),
            ("E17/batch_speedup_at_max", 3.0),
            ("E17/partial_batch_speedup_at_max", 2.0),
            ("E18/count_speedup_at_max", 4.0),
            ("E18/partial_batch_speedup_at_max", 2.0),
            ("E19/fetch_p50_us_at_max", 700.0),
            ("E19/qps_at_max", 1_500.0),
            ("E19/post_commit_ttfp_us_at_max", 4_000.0),
            ("E19/answers_equal", 1.0),
            ("E20/speedup_4_workers", 1.2),
            ("E20/answers_equal", 1.0),
        ])
    }

    #[test]
    fn parser_reads_report_documents() {
        let mut table = Table::new("E0", "a \"title\"\nwith newline", &["x"]);
        table.push_row(vec!["1".to_owned()]);
        table.push_metric("m", 0.5);
        table.push_metric("nan", f64::NAN);
        let doc = parse_json(&table.to_json()).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("E0"));
        assert_eq!(
            doc.get("title").and_then(Json::as_str),
            Some("a \"title\"\nwith newline")
        );
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("m").and_then(Json::as_f64), Some(0.5));
        assert_eq!(metrics.get("nan"), Some(&Json::Null));
        assert!(matches!(doc.get("rows"), Some(Json::Arr(rows)) if rows.len() == 1));
        // Malformed inputs fail instead of panicking.
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn run_record_round_trips() {
        let run = healthy_run();
        let parsed = RunRecord::from_json(&run.to_json()).unwrap();
        assert_eq!(parsed, run);
    }

    #[test]
    fn identical_runs_pass_and_improvements_pass() {
        let base = healthy_run();
        assert!(check(&base, &base).is_empty());
        let mut faster = healthy_run();
        faster
            .metrics
            .insert("E12/iter_mean_ns_at_max".to_owned(), 100.0);
        faster
            .metrics
            .insert("E17/batch_speedup_at_max".to_owned(), 5.0);
        assert!(check(&base, &faster).is_empty());
    }

    #[test]
    fn tenfold_delay_regression_trips_the_gate() {
        let base = healthy_run();
        let mut slow = healthy_run();
        slow.metrics
            .insert("E12/iter_mean_ns_at_max".to_owned(), 5_000.0);
        let regressions = check(&base, &slow);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "E12/iter_mean_ns_at_max");
        assert!(regressions[0].change_pct > 100.0);
        assert!(regressions[0]
            .describe()
            .contains("E12/iter_mean_ns_at_max"));
    }

    #[test]
    fn lost_amortisation_trips_the_speedup_gate() {
        let base = healthy_run();
        let mut unbatched = healthy_run();
        // The batched path silently degrading to per-tuple pulls: 3.0 -> 1.0.
        unbatched
            .metrics
            .insert("E17/batch_speedup_at_max".to_owned(), 1.0);
        let regressions = check(&base, &unbatched);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "E17/batch_speedup_at_max");
        // A small wobble below the baseline does not trip it.
        let mut wobble = healthy_run();
        wobble
            .metrics
            .insert("E17/batch_speedup_at_max".to_owned(), 2.6);
        assert!(check(&base, &wobble).is_empty());
    }

    #[test]
    fn noise_within_tolerance_and_near_zero_baselines_pass() {
        let base = healthy_run();
        let mut noisy = healthy_run();
        noisy
            .metrics
            .insert("E12/iter_mean_ns_at_max".to_owned(), 700.0); // +40% < 100%
        noisy
            .metrics
            .insert("E14/ttfa_max_nanos".to_owned(), 25_000.0); // +25%
        assert!(check(&base, &noisy).is_empty());
        // A ≈0 slope baseline: relative change is huge but the absolute
        // change is below the floor.
        let mut zero_base = healthy_run();
        zero_base.metrics.insert(
            "E16/post_commit_refresh_slope_us_per_fact".to_owned(),
            0.001,
        );
        let mut tiny_wobble = healthy_run();
        tiny_wobble
            .metrics
            .insert("E16/post_commit_refresh_slope_us_per_fact".to_owned(), 0.04);
        assert!(check(&zero_base, &tiny_wobble).is_empty());
    }

    #[test]
    fn missing_gated_metric_is_a_regression() {
        let base = healthy_run();
        let mut partial = healthy_run();
        partial.metrics.remove("E14/ttfa_max_nanos");
        let regressions = check(&base, &partial);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].current.is_nan());
        assert!(regressions[0].describe().contains("missing"));
        // The other direction — a gate the baseline predates — is skipped.
        let mut old_base = healthy_run();
        old_base.metrics.remove("E14/ttfa_max_nanos");
        assert!(check(&old_base, &base).is_empty());
    }

    #[test]
    fn collect_run_reads_reports_and_requires_gated_experiments() {
        let dir = temp_dir("collect");
        for exp in gated_experiments() {
            let mut table = Table::new(exp, "t", &["x"]);
            table.push_metric("some_metric", 1.5);
            std::fs::write(dir.join(format!("BENCH_{exp}.json")), table.to_json()).unwrap();
        }
        let run = collect_run(&dir, "quick-v1", "abc".to_owned(), 42).unwrap();
        assert_eq!(run.commit, "abc");
        assert_eq!(run.metrics.get("E12/some_metric"), Some(&1.5));
        assert_eq!(run.metrics.len(), gated_experiments().len());
        // A gated experiment's report going missing is an error, not a pass.
        std::fs::remove_file(dir.join("BENCH_E16.json")).unwrap();
        assert!(collect_run(&dir, "quick-v1", "abc".to_owned(), 42).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_appends_history_and_promotes_baselines() {
        let dir = temp_dir("record");
        let history = dir.join("bench_history");
        let first = healthy_run();
        // First record becomes the baseline even without --set-baseline.
        assert!(record(&history, &first, false).unwrap());
        let stored = load_baseline(&history, &first.fingerprint)
            .unwrap()
            .unwrap();
        assert_eq!(stored, first);
        // A later record does not displace it...
        let mut second = healthy_run();
        second.commit = "cafe".to_owned();
        assert!(!record(&history, &second, false).unwrap());
        assert_eq!(
            load_baseline(&history, &first.fingerprint)
                .unwrap()
                .unwrap(),
            first
        );
        // ...unless promotion is requested.
        assert!(record(&history, &second, true).unwrap());
        assert_eq!(
            load_baseline(&history, &first.fingerprint)
                .unwrap()
                .unwrap(),
            second
        );
        // Every record landed in the history, one JSON line each.
        let hist = std::fs::read_to_string(history_path(&history, &first.fingerprint)).unwrap();
        assert_eq!(hist.lines().count(), 3);
        for line in hist.lines() {
            RunRecord::from_json(line).unwrap();
        }
        // An unknown fingerprint has no baseline.
        assert!(load_baseline(&history, "full-v999").unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_digest_resolves_head_forms() {
        let dir = temp_dir("digest");
        assert_eq!(commit_digest(&dir), "unknown");
        let git = dir.join(".git");
        std::fs::create_dir_all(git.join("refs/heads")).unwrap();
        // Detached HEAD.
        std::fs::write(git.join("HEAD"), "0123abcd\n").unwrap();
        assert_eq!(commit_digest(&dir), "0123abcd");
        // Symbolic HEAD through a loose ref.
        std::fs::write(git.join("HEAD"), "ref: refs/heads/main\n").unwrap();
        std::fs::write(git.join("refs/heads/main"), "feedface\n").unwrap();
        assert_eq!(commit_digest(&dir), "feedface");
        // Symbolic HEAD through packed-refs only.
        std::fs::remove_file(git.join("refs/heads/main")).unwrap();
        std::fs::write(
            git.join("packed-refs"),
            "# pack-refs with: peeled fully-peeled sorted\nabad1dea refs/heads/main\n",
        )
        .unwrap();
        assert_eq!(commit_digest(&dir), "abad1dea");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
