//! Machine-readable experiment reports: `BENCH_<exp>.json` files.
//!
//! The harness prints human-readable tables *and* writes one JSON document
//! per experiment so that the performance trajectory (preprocessing times,
//! delay statistics) can be tracked across commits by tooling.  The JSON is
//! hand-rolled — the build environment has no real `serde` — and kept to a
//! stable, easily parsed shape:
//!
//! ```json
//! {
//!   "id": "E3",
//!   "title": "...",
//!   "headers": ["researchers", ...],
//!   "rows": [["1000", ...], ...],
//!   "metrics": {"delay_slope_ns_per_fact": 0.0012, ...}
//! }
//! ```
//!
//! `rows` mirror the printed table cell-for-cell (all strings); `metrics`
//! carries the experiment's summary scalars as numbers.

use crate::experiments::Table;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    format!("[{}]", cells.join(","))
}

/// Renders a finite `f64` as JSON (non-finite values become `null`).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

impl Table {
    /// Serialises the table (and its metrics) as a JSON document.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.rows.iter().map(|r| json_string_array(r)).collect();
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_number(*v)))
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"headers\":{},\"rows\":[{}],\"metrics\":{{{}}}}}\n",
            json_escape(&self.id),
            json_escape(&self.title),
            json_string_array(&self.headers),
            rows.join(","),
            metrics.join(",")
        )
    }
}

/// Writes `BENCH_<id>.json` for every table into `dir` (created if missing).
/// Returns the written paths.
pub fn write_json_reports(tables: &[Table], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(tables.len());
    for table in tables {
        let path = dir.join(format!("BENCH_{}.json", table.id));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(table.to_json().as_bytes())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut table = Table::new("E0", "A \"quoted\" title", &["a", "b"]);
        table.push_row(vec!["1".to_owned(), "x\ny".to_owned()]);
        table.push_metric("slope", 0.25);
        table.push_metric("bad", f64::NAN);
        table
    }

    #[test]
    fn json_shape_and_escaping() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"id\":\"E0\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"x\\ny\""));
        assert!(json.contains("\"slope\":0.25"));
        assert!(json.contains("\"bad\":null"));
        assert!(json.ends_with("}\n"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn reports_are_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("omq_bench_report_{}", std::process::id()));
        let written = write_json_reports(&[sample()], &dir).unwrap();
        assert_eq!(written.len(), 1);
        let content = std::fs::read_to_string(&written[0]).unwrap();
        assert_eq!(content, sample().to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
