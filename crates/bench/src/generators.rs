//! Scalable synthetic workload generators.
//!
//! * [`university`] — the running example of the paper (Example 1.1/2.2)
//!   scaled to arbitrary sizes, with configurable incompleteness (the fraction
//!   of researchers without a listed office and of offices without a listed
//!   building controls how many answers carry wildcards);
//! * [`random_graph`] — Erdős–Rényi style graphs for the triangle reductions;
//! * [`sparse_boolean_matrix`] — sparse Boolean matrices for the BMM
//!   reductions;
//! * [`random_acyclic_database`] — small random databases over a fixed schema
//!   (used by property tests).

use omq_chase::{Ontology, OntologyMediatedQuery};
use omq_cq::ConjunctiveQuery;
use omq_data::{Database, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the university / office workload.
#[derive(Debug, Clone, Copy)]
pub struct UniversityConfig {
    /// Number of researchers.
    pub researchers: usize,
    /// Fraction of researchers with a listed office.
    pub office_ratio: f64,
    /// Fraction of listed offices with a listed building.
    pub building_ratio: f64,
    /// Number of buildings to draw from.
    pub buildings: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            researchers: 1000,
            office_ratio: 0.7,
            building_ratio: 0.8,
            buildings: 25,
            seed: 7,
        }
    }
}

/// Source text of the running example's ontology — exported so experiments
/// that ship the OMQ over a wire (E20) send exactly what
/// [`university_ontology`] parses.
pub const UNIVERSITY_ONTOLOGY_TEXT: &str = "Researcher(x) -> exists y. HasOffice(x, y)\n\
                                            HasOffice(x, y) -> Office(y)\n\
                                            Office(x) -> exists y. InBuilding(x, y)";

/// Source text of the running example's query (see
/// [`UNIVERSITY_ONTOLOGY_TEXT`]).
pub const UNIVERSITY_QUERY_TEXT: &str = "q(x1, x2, x3) :- HasOffice(x1, x2), InBuilding(x2, x3)";

/// The ontology of the running example (Example 1.1).
pub fn university_ontology() -> Ontology {
    Ontology::parse(UNIVERSITY_ONTOLOGY_TEXT).expect("static ontology parses")
}

/// The query of the running example.
pub fn university_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(UNIVERSITY_QUERY_TEXT).expect("static query parses")
}

/// The data schema of the running example.
pub fn university_schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("Researcher", 1).expect("fresh schema");
    s.add_relation("HasOffice", 2).expect("fresh schema");
    s.add_relation("InBuilding", 2).expect("fresh schema");
    s
}

/// Generates the university OMQ and a database of the configured size.
pub fn university(config: &UniversityConfig) -> (OntologyMediatedQuery, Database) {
    let omq = OntologyMediatedQuery::new(university_ontology(), university_query())
        .expect("static OMQ is well-formed");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(university_schema());
    for i in 0..config.researchers {
        let person = format!("person{i}");
        db.add_named_fact("Researcher", &[person.as_str()])
            .expect("schema fits");
        if rng.gen_bool(config.office_ratio) {
            let office = format!("office{i}");
            db.add_named_fact("HasOffice", &[person.as_str(), office.as_str()])
                .expect("schema fits");
            if rng.gen_bool(config.building_ratio) {
                let building = format!("building{}", rng.gen_range(0..config.buildings.max(1)));
                db.add_named_fact("InBuilding", &[office.as_str(), building.as_str()])
                    .expect("schema fits");
            }
        }
    }
    (omq, db)
}

/// Configuration of the clustered (component-rich) university workload.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredConfig {
    /// Number of independent clusters (≈ Gaifman components).
    pub clusters: usize,
    /// Researchers per cluster.
    pub researchers_per_cluster: usize,
    /// Fraction of researchers with a listed office.
    pub office_ratio: f64,
    /// Fraction of listed offices with a listed building.
    pub building_ratio: f64,
    /// Buildings available within each cluster.
    pub buildings_per_cluster: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig {
            clusters: 16,
            researchers_per_cluster: 250,
            office_ratio: 0.7,
            building_ratio: 0.8,
            buildings_per_cluster: 4,
            seed: 11,
        }
    }
}

/// The university workload partitioned into independent clusters: every
/// cluster has its own researchers, offices and buildings (disjoint
/// constant ranges), so the database's Gaifman graph has at least one
/// connected component per cluster.  This is the component-rich workload of
/// experiment E13 — the shape `Database::shard_by_component` and
/// `QueryPlan::execute_parallel` are designed for.
pub fn clustered_university(config: &ClusteredConfig) -> (OntologyMediatedQuery, Database) {
    let omq = OntologyMediatedQuery::new(university_ontology(), university_query())
        .expect("static OMQ is well-formed");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(university_schema());
    for c in 0..config.clusters {
        for i in 0..config.researchers_per_cluster {
            let person = format!("c{c}person{i}");
            db.add_named_fact("Researcher", &[person.as_str()])
                .expect("schema fits");
            if rng.gen_bool(config.office_ratio) {
                let office = format!("c{c}office{i}");
                db.add_named_fact("HasOffice", &[person.as_str(), office.as_str()])
                    .expect("schema fits");
                if rng.gen_bool(config.building_ratio) {
                    let building = format!(
                        "c{c}building{}",
                        rng.gen_range(0..config.buildings_per_cluster.max(1))
                    );
                    db.add_named_fact("InBuilding", &[office.as_str(), building.as_str()])
                        .expect("schema fits");
                }
            }
        }
    }
    (omq, db)
}

/// An undirected graph as an edge list over vertices `0..n`.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices.
    pub vertices: usize,
    /// Undirected edges (u < v).
    pub edges: Vec<(u32, u32)>,
}

/// Generates a random graph with `n` vertices and (approximately) `m` distinct
/// edges.
pub fn random_graph(n: usize, m: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = std::collections::BTreeSet::new();
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    while edges.len() < target {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let edge = if a < b { (a, b) } else { (b, a) };
        edges.insert(edge);
    }
    EdgeList {
        vertices: n,
        edges: edges.into_iter().collect(),
    }
}

/// A triangle-free graph: a random bipartite graph.
pub fn random_bipartite_graph(n: usize, m: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = (n / 2).max(1) as u32;
    let mut edges = std::collections::BTreeSet::new();
    let max_edges = (half as usize) * (n - half as usize).max(1);
    let target = m.min(max_edges);
    let mut attempts = 0usize;
    while edges.len() < target && attempts < 50 * target.max(1) {
        attempts += 1;
        let a = rng.gen_range(0..half);
        let b = half + rng.gen_range(0..(n as u32 - half).max(1));
        edges.insert((a, b));
    }
    EdgeList {
        vertices: n,
        edges: edges.into_iter().collect(),
    }
}

/// A sparse Boolean matrix as a list of `(row, column)` pairs with value 1.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    /// Dimension (the matrix is `n × n`).
    pub n: usize,
    /// The positions carrying 1.
    pub ones: Vec<(u32, u32)>,
}

impl SparseMatrix {
    /// Multiplies two sparse Boolean matrices directly (the reference
    /// implementation the reduction experiments compare against).
    pub fn multiply(&self, other: &SparseMatrix) -> SparseMatrix {
        use rustc_hash::{FxHashMap, FxHashSet};
        let mut by_row: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &(r, c) in &other.ones {
            by_row.entry(r).or_default().push(c);
        }
        let mut ones: FxHashSet<(u32, u32)> = FxHashSet::default();
        for &(a, c) in &self.ones {
            if let Some(columns) = by_row.get(&c) {
                for &b in columns {
                    ones.insert((a, b));
                }
            }
        }
        let mut ones: Vec<(u32, u32)> = ones.into_iter().collect();
        ones.sort_unstable();
        SparseMatrix { n: self.n, ones }
    }
}

/// Generates a random sparse Boolean matrix with the given number of ones.
pub fn sparse_boolean_matrix(n: usize, ones: usize, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    let target = ones.min(n * n);
    while set.len() < target {
        set.insert((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
    }
    SparseMatrix {
        n,
        ones: set.into_iter().collect(),
    }
}

/// A small random database over a schema with unary relations `A`, `B` and
/// binary relations `R`, `S` — the shape used by the property tests.
pub fn random_acyclic_database(constants: usize, facts: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schema = Schema::new();
    schema.add_relation("A", 1).expect("fresh schema");
    schema.add_relation("B", 1).expect("fresh schema");
    schema.add_relation("R", 2).expect("fresh schema");
    schema.add_relation("S", 2).expect("fresh schema");
    let mut db = Database::new(schema);
    let names: Vec<String> = (0..constants.max(1)).map(|i| format!("c{i}")).collect();
    for _ in 0..facts {
        let pick = |rng: &mut StdRng| names[rng.gen_range(0..names.len())].clone();
        match rng.gen_range(0..4) {
            0 => {
                let a = pick(&mut rng);
                db.add_named_fact("A", &[a.as_str()]).expect("schema fits");
            }
            1 => {
                let a = pick(&mut rng);
                db.add_named_fact("B", &[a.as_str()]).expect("schema fits");
            }
            2 => {
                let (a, b) = (pick(&mut rng), pick(&mut rng));
                db.add_named_fact("R", &[a.as_str(), b.as_str()])
                    .expect("schema fits");
            }
            _ => {
                let (a, b) = (pick(&mut rng), pick(&mut rng));
                db.add_named_fact("S", &[a.as_str(), b.as_str()])
                    .expect("schema fits");
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_scales_with_config() {
        let small = university(&UniversityConfig {
            researchers: 10,
            ..Default::default()
        });
        let large = university(&UniversityConfig {
            researchers: 100,
            ..Default::default()
        });
        assert!(large.1.len() > small.1.len());
        assert!(small.0.is_eli());
    }

    #[test]
    fn incompleteness_ratios_drive_wildcards() {
        let complete = university(&UniversityConfig {
            researchers: 50,
            office_ratio: 1.0,
            building_ratio: 1.0,
            ..Default::default()
        });
        let incomplete = university(&UniversityConfig {
            researchers: 50,
            office_ratio: 0.0,
            building_ratio: 0.0,
            ..Default::default()
        });
        assert!(complete.1.len() > incomplete.1.len());
    }

    #[test]
    fn clustered_university_is_component_rich() {
        let (omq, db) = clustered_university(&ClusteredConfig {
            clusters: 6,
            researchers_per_cluster: 10,
            ..Default::default()
        });
        assert!(omq.is_guarded());
        // At least one component per cluster (office-less researchers are
        // their own islands, so usually many more).
        assert!(db.component_count() >= 6);
        // No constant is shared between clusters: sharding into 6 shards
        // keeps every fact in exactly one shard.
        let shards = db.shard_into(6);
        assert_eq!(shards.len(), 6);
        assert_eq!(shards.iter().map(Database::len).sum::<usize>(), db.len());
    }

    #[test]
    fn random_graph_respects_bounds() {
        let g = random_graph(50, 100, 1);
        assert_eq!(g.vertices, 50);
        assert_eq!(g.edges.len(), 100);
        for &(a, b) in &g.edges {
            assert!(a < b);
            assert!((b as usize) < g.vertices);
        }
    }

    #[test]
    fn bipartite_graph_has_no_triangle() {
        let g = random_bipartite_graph(40, 80, 3);
        // Brute-force triangle check.
        let set: std::collections::HashSet<(u32, u32)> = g.edges.iter().copied().collect();
        let has = |a: u32, b: u32| set.contains(&(a.min(b), a.max(b)));
        let mut found = false;
        for &(a, b) in &g.edges {
            for c in 0..g.vertices as u32 {
                if c != a && c != b && has(a, c) && has(b, c) {
                    found = true;
                }
            }
        }
        assert!(!found);
    }

    #[test]
    fn sparse_matrix_multiply_reference() {
        let m1 = SparseMatrix {
            n: 3,
            ones: vec![(0, 1), (1, 2)],
        };
        let m2 = SparseMatrix {
            n: 3,
            ones: vec![(1, 0), (2, 2)],
        };
        let product = m1.multiply(&m2);
        assert_eq!(product.ones, vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn random_matrix_size() {
        let m = sparse_boolean_matrix(20, 50, 9);
        assert_eq!(m.ones.len(), 50);
    }

    #[test]
    fn random_database_is_reproducible() {
        let a = random_acyclic_database(10, 40, 5);
        let b = random_acyclic_database(10, 40, 5);
        assert_eq!(a.len(), b.len());
    }
}
