//! The experiment harness: regenerates every table of EXPERIMENTS.md and
//! writes machine-readable `BENCH_<exp>.json` reports.
//!
//! Usage:
//!
//! ```text
//! cargo run -p omq-bench --bin harness --release                # full suite
//! cargo run -p omq-bench --bin harness --release -- --quick     # smaller sizes
//! cargo run -p omq-bench --bin harness --release -- E3 E5       # selected experiments
//! cargo run -p omq-bench --bin harness --release -- --json-dir out E12
//! cargo run -p omq-bench --bin harness --release -- --no-json   # tables only
//! ```
//!
//! One `BENCH_<exp>.json` file is written per experiment (default directory:
//! the working directory), carrying the table cells plus the experiment's
//! summary metrics, so the performance trajectory can be tracked by tooling.

use omq_bench::{experiments, report};
use std::path::PathBuf;

fn main() {
    // E20 spawns this very binary as its worker fleet: when the cluster
    // environment variables are set, become a worker instead of a harness.
    if omq_cluster::maybe_run_worker() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let no_json = args.iter().any(|a| a == "--no-json");
    let mut json_dir = PathBuf::from(".");
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--json-dir requires a directory argument");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" | "-q" | "--no-json" => {}
            a if a.starts_with('-') => {
                eprintln!("unknown flag `{a}` (expected --quick/-q, --no-json, --json-dir DIR)");
                std::process::exit(2);
            }
            a => selected.push(a.to_owned()),
        }
        i += 1;
    }

    let tables = if selected.is_empty() {
        experiments::run_all(quick)
    } else {
        selected
            .iter()
            .filter_map(|id| {
                let table = experiments::run_experiment(id, quick);
                if table.is_none() {
                    eprintln!("unknown experiment `{id}` (expected E1..E20)");
                }
                table
            })
            .collect()
    };

    for table in &tables {
        println!("{}", table.render());
    }

    if !no_json {
        match report::write_json_reports(&tables, &json_dir) {
            Ok(written) => {
                for path in written {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write JSON reports: {e}");
                std::process::exit(1);
            }
        }
    }
}
