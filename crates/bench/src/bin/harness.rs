//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p omq-bench --bin harness --release                # full suite
//! cargo run -p omq-bench --bin harness --release -- --quick     # smaller sizes
//! cargo run -p omq-bench --bin harness --release -- E3 E5       # selected experiments
//! ```

use omq_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .cloned()
        .collect();

    let tables = if selected.is_empty() {
        experiments::run_all(quick)
    } else {
        selected
            .iter()
            .filter_map(|id| {
                let table = experiments::run_experiment(id, quick);
                if table.is_none() {
                    eprintln!("unknown experiment `{id}` (expected E1..E11)");
                }
                table
            })
            .collect()
    };

    for table in tables {
        println!("{}", table.render());
    }
}
