//! The perf-trajectory CI gate: records harness runs into `bench_history/`
//! and fails (exit 1) when a gated metric regresses beyond tolerance.
//!
//! Usage (after `harness --quick --json-dir reports E12 E14 E16 E17 E18 E19`):
//!
//! ```text
//! trajectory check  --reports reports                  # diff vs baseline
//! trajectory record --reports reports                  # append to history
//! trajectory record --reports reports --set-baseline   # promote baseline
//! ```
//!
//! Flags: `--reports DIR` (where the `BENCH_<exp>.json` files are, default
//! `.`), `--history DIR` (default `bench_history`), `--full` (full-size
//! sweeps; the default fingerprint is the `--quick` mode CI runs).
//!
//! Exit codes: `0` clean (`check` with no baseline passes with a warning —
//! the first run of a new fingerprint has nothing to compare against),
//! `1` regression detected, `2` usage or I/O error.

use omq_bench::trajectory;
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command: Option<String> = None;
    let mut reports = PathBuf::from(".");
    let mut history = PathBuf::from("bench_history");
    let mut quick = true;
    let mut set_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reports" | "--history" => {
                let flag = args[i].clone();
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("{flag} requires a directory argument");
                    std::process::exit(2);
                };
                if flag == "--reports" {
                    reports = PathBuf::from(dir);
                } else {
                    history = PathBuf::from(dir);
                }
            }
            "--full" => quick = false,
            "--quick" => quick = true,
            "--set-baseline" => set_baseline = true,
            a if a.starts_with('-') => {
                eprintln!(
                    "unknown flag `{a}` (expected --reports DIR, --history DIR, --quick, --full, \
                     --set-baseline)"
                );
                std::process::exit(2);
            }
            a if command.is_none() => command = Some(a.to_owned()),
            a => {
                eprintln!("unexpected argument `{a}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let fingerprint = trajectory::fingerprint(quick);
    let commit = trajectory::commit_digest(&PathBuf::from("."));
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = match trajectory::collect_run(&reports, &fingerprint, commit, unix_time) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("trajectory: {e}");
            eprintln!(
                "run the gated experiments first: harness --quick --json-dir {} {}",
                reports.display(),
                trajectory::gated_experiments().join(" ")
            );
            std::process::exit(2);
        }
    };

    match command.as_deref() {
        Some("record") => {
            let promoted = match trajectory::record(&history, &run, set_baseline) {
                Ok(promoted) => promoted,
                Err(e) => {
                    eprintln!("trajectory: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "recorded {} metrics at commit {} into {}{}",
                run.metrics.len(),
                run.commit,
                trajectory::history_path(&history, &fingerprint).display(),
                if promoted { " (baseline updated)" } else { "" }
            );
        }
        Some("check") => {
            let baseline = match trajectory::load_baseline(&history, &fingerprint) {
                Ok(baseline) => baseline,
                Err(e) => {
                    eprintln!("trajectory: {e}");
                    std::process::exit(2);
                }
            };
            let Some(baseline) = baseline else {
                eprintln!(
                    "trajectory: no baseline for fingerprint `{fingerprint}` in {} — \
                     record one with `trajectory record --set-baseline`; passing",
                    history.display()
                );
                return;
            };
            println!(
                "gated metrics vs baseline {} (fingerprint {fingerprint}):",
                baseline.commit
            );
            for gate in trajectory::gated_metrics() {
                let key = format!("{}/{}", gate.experiment, gate.metric);
                let base = baseline.metrics.get(&key);
                let cur = run.metrics.get(&key);
                println!(
                    "  {key}: {} -> {}",
                    base.map_or("-".to_owned(), |v| format!("{v:.3}")),
                    cur.map_or("-".to_owned(), |v| format!("{v:.3}"))
                );
            }
            let regressions = trajectory::check(&baseline, &run);
            if regressions.is_empty() {
                println!("trajectory: clean");
                return;
            }
            eprintln!("trajectory: {} regression(s) detected:", regressions.len());
            for regression in &regressions {
                eprintln!("  {}", regression.describe());
            }
            std::process::exit(1);
        }
        other => {
            eprintln!(
                "usage: trajectory <record|check> [--reports DIR] [--history DIR] [--quick|--full] \
                 [--set-baseline]{}",
                other.map_or(String::new(), |o| format!(" (got `{o}`)"))
            );
            std::process::exit(2);
        }
    }
}
