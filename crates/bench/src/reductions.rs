//! The lower-bound reductions of the paper, implemented as runnable
//! constructions.
//!
//! The paper's lower bounds are *conditional impossibility* results — they
//! cannot be "run".  What can be run, and what these experiments validate, is
//! their constructive content:
//!
//! * **Triangle reductions** (Theorems 3.4, 3.6, 5.1): from an undirected
//!   graph `G` one builds a database `D_G` and a fixed OMQ such that a single
//!   answer test solves triangle detection.  We build exactly the
//!   Theorem 3.6(1) construction and check it against a direct triangle
//!   detector; the harness compares its running-time growth against the
//!   tractable (weakly acyclic) case.
//! * **Boolean matrix multiplication reductions** (Theorems 4.4, 4.6): from
//!   two sparse Boolean matrices one builds a database such that enumerating a
//!   non-free-connex query computes the matrix product.  We recover the
//!   product from the enumeration and check it against a direct sparse
//!   multiplication.

use crate::generators::{EdgeList, SparseMatrix};
use omq_chase::{Ontology, OntologyMediatedQuery};
use omq_core::single_testing;
use omq_cq::ConjunctiveQuery;
use omq_data::{Database, PartialTuple, PartialValue, Schema, Value};

/// The OMQ of the Theorem 3.6(1) construction: the ontology creates an
/// anonymous triangle below every edge, and the query asks for a triangle.
/// The all-wildcard tuple `(*,*,*)` is a *minimal* partial answer iff the
/// graph has **no** triangle.
pub fn triangle_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse(
        "R(x1, x2) -> exists y1, y2, y3. R(y1, y2), R(y2, y1), R(y2, y3), R(y3, y2), R(y3, y1), R(y1, y3)",
    )
    .expect("static ontology parses");
    let query = ConjunctiveQuery::parse(
        "q(x, y, z) :- R(x, y), R(y, x), R(y, z), R(z, y), R(z, x), R(x, z)",
    )
    .expect("static query parses");
    OntologyMediatedQuery::new(ontology, query).expect("static OMQ is well-formed")
}

/// A *weakly acyclic* control OMQ over the same schema, used to contrast
/// linear-time single-testing with the triangle-hard case.
pub fn path_omq() -> OntologyMediatedQuery {
    let ontology = Ontology::parse("R(x1, x2) -> exists y. R(x2, y)").expect("static ontology");
    let query = ConjunctiveQuery::parse("q(x, y, z) :- R(x, y), R(y, z)").expect("static query");
    OntologyMediatedQuery::new(ontology, query).expect("static OMQ is well-formed")
}

/// The database `D_G` of a graph: both orientations of every edge.
pub fn graph_database(graph: &EdgeList) -> Database {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    let mut db = Database::new(schema);
    for &(a, b) in &graph.edges {
        let a = format!("v{a}");
        let b = format!("v{b}");
        db.add_named_fact("R", &[a.as_str(), b.as_str()])
            .expect("schema fits");
        db.add_named_fact("R", &[b.as_str(), a.as_str()])
            .expect("schema fits");
    }
    db
}

/// Chase configuration for the reduction experiments: the constructions only
/// need the first layer of anonymous facts, so a graft depth of 1 keeps the
/// chased instances linear in the graph with a small constant.
fn reduction_chase_config() -> omq_chase::QchaseConfig {
    omq_chase::QchaseConfig {
        tree_depth: Some(1),
        saturation_depth: Some(1),
        ..Default::default()
    }
}

/// Triangle detection through the OMQ reduction: `(*,*,*)` is a minimal
/// partial answer iff `G` has no triangle, so the graph has a triangle iff the
/// minimality test fails.
pub fn has_triangle_via_omq(graph: &EdgeList) -> bool {
    let omq = triangle_omq();
    let db = graph_database(graph);
    if db.is_empty() {
        return false;
    }
    // Run the real pipeline: query-directed chase (which grafts an anonymous
    // triangle below every edge, so `(*,*,*)` is always a partial answer),
    // then single-test minimality.  The grafted triangles consist of nulls
    // only, so `(*,*,*)` can be improved to a tuple of constants iff the graph
    // itself contains a triangle.  A graft depth of 1 suffices: the reduction
    // only needs the single anonymous triangle below each edge.
    let chased = omq_chase::query_directed_chase(&db, &omq, &reduction_chase_config())
        .expect("guarded ontology chases");
    let candidate = PartialTuple(vec![
        PartialValue::Star,
        PartialValue::Star,
        PartialValue::Star,
    ]);
    let minimal = single_testing::test_minimal_partial(omq.query(), &chased.database, &candidate)
        .expect("arity matches");
    !minimal
}

/// Direct triangle detection (reference implementation).
pub fn has_triangle_direct(graph: &EdgeList) -> bool {
    use rustc_hash::{FxHashMap, FxHashSet};
    let mut adjacency: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
    for &(a, b) in &graph.edges {
        adjacency.entry(a).or_default().insert(b);
        adjacency.entry(b).or_default().insert(a);
    }
    for &(a, b) in &graph.edges {
        let (na, nb) = (&adjacency[&a], &adjacency[&b]);
        let (small, large) = if na.len() <= nb.len() {
            (na, nb)
        } else {
            (nb, na)
        };
        if small
            .iter()
            .any(|c| *c != a && *c != b && large.contains(c))
        {
            return true;
        }
    }
    false
}

/// Single-testing workload used by experiment E7: tests the candidate
/// `(v0, v1, v2)` (an arbitrary concrete tuple) for the given OMQ over `D_G`.
/// For the weakly acyclic [`path_omq`] this runs in linear time; for the
/// triangle-shaped query the work grows super-linearly with the graph.
pub fn single_test_workload(omq: &OntologyMediatedQuery, graph: &EdgeList) -> bool {
    let db = graph_database(graph);
    if db.is_empty() {
        return false;
    }
    let chased = omq_chase::query_directed_chase(&db, omq, &reduction_chase_config())
        .expect("guarded ontology chases");
    let d0 = chased.database;
    let names: Vec<String> = (0..3).map(|i| format!("v{i}")).collect();
    let Ok(values) = single_testing::resolve_constants(
        &d0,
        &names.iter().map(String::as_str).collect::<Vec<_>>(),
    ) else {
        return false;
    };
    single_testing::test_complete(omq.query(), &d0, &values).unwrap_or(false)
}

/// The database of the BMM reduction: `R0(a, c)` for every 1-entry of `M1` and
/// `R1(c, b)` for every 1-entry of `M2`.
pub fn bmm_database(m1: &SparseMatrix, m2: &SparseMatrix) -> Database {
    let mut schema = Schema::new();
    schema.add_relation("R0", 2).expect("fresh schema");
    schema.add_relation("R1", 2).expect("fresh schema");
    let mut db = Database::new(schema);
    for &(a, c) in &m1.ones {
        let a = format!("a{a}");
        let c = format!("c{c}");
        db.add_named_fact("R0", &[a.as_str(), c.as_str()])
            .expect("schema fits");
    }
    for &(c, b) in &m2.ones {
        let c = format!("c{c}");
        let b = format!("b{b}");
        db.add_named_fact("R1", &[c.as_str(), b.as_str()])
            .expect("schema fits");
    }
    db
}

/// The acyclic but non-free-connex query of the reduction:
/// `q(x, y) :- R0(x, z), R1(z, y)` — enumerating its answers computes `M1·M2`.
pub fn bmm_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x, y) :- R0(x, z), R1(z, y)").expect("static query parses")
}

/// The free-connex variant `q(x, z, y)` (all variables free), which *is*
/// enumerable with constant delay — the other side of the frontier.
pub fn bmm_full_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x, z, y) :- R0(x, z), R1(z, y)").expect("static query parses")
}

/// Computes `M1·M2` by evaluating the reduction query (brute force, since the
/// query is not free-connex) and projecting the answers back to index pairs.
pub fn multiply_via_enumeration(m1: &SparseMatrix, m2: &SparseMatrix) -> SparseMatrix {
    let db = bmm_database(m1, m2);
    let query = bmm_query();
    let answers = omq_core::baseline::cq_answers(&query, &db);
    let mut ones: Vec<(u32, u32)> = answers
        .iter()
        .map(|t| {
            let a = match t[0] {
                Value::Const(c) => db.const_name(c)[1..].parse::<u32>().expect("a index"),
                Value::Null(_) => unreachable!("no nulls in the reduction database"),
            };
            let b = match t[1] {
                Value::Const(c) => db.const_name(c)[1..].parse::<u32>().expect("b index"),
                Value::Null(_) => unreachable!("no nulls in the reduction database"),
            };
            (a, b)
        })
        .collect();
    ones.sort_unstable();
    ones.dedup();
    SparseMatrix { n: m1.n, ones }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_bipartite_graph, random_graph, sparse_boolean_matrix};

    #[test]
    fn triangle_reduction_matches_direct_detection() {
        for seed in 0..5u64 {
            let graph = random_graph(16, 30, seed);
            assert_eq!(
                has_triangle_via_omq(&graph),
                has_triangle_direct(&graph),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bipartite_graphs_have_no_triangle() {
        let graph = random_bipartite_graph(20, 40, 11);
        assert!(!has_triangle_direct(&graph));
        assert!(!has_triangle_via_omq(&graph));
    }

    #[test]
    fn explicit_triangle_is_found() {
        let graph = EdgeList {
            vertices: 4,
            edges: vec![(0, 1), (1, 2), (0, 2), (2, 3)],
        };
        assert!(has_triangle_direct(&graph));
        assert!(has_triangle_via_omq(&graph));
    }

    #[test]
    fn triangle_query_classification_matches_paper() {
        let omq = triangle_omq();
        let report = omq.classify();
        // Weakly acyclic (the three answer variables are replaced by
        // constants), but not acyclic.
        assert!(report.weakly_acyclic);
        assert!(!report.acyclic);
        let control = path_omq();
        assert!(control.classify().weakly_acyclic);
    }

    #[test]
    fn bmm_reduction_computes_the_product() {
        for seed in 0..3u64 {
            let m1 = sparse_boolean_matrix(12, 30, seed);
            let m2 = sparse_boolean_matrix(12, 30, seed + 100);
            let direct = m1.multiply(&m2);
            let via_enum = multiply_via_enumeration(&m1, &m2);
            assert_eq!(direct.ones, via_enum.ones, "seed {seed}");
        }
    }

    #[test]
    fn bmm_queries_sit_on_both_sides_of_the_frontier() {
        use omq_cq::acyclicity::AcyclicityReport;
        let hard = AcyclicityReport::classify(&bmm_query());
        assert!(hard.acyclic && !hard.free_connex_acyclic);
        let easy = AcyclicityReport::classify(&bmm_full_query());
        assert!(easy.acyclic && easy.free_connex_acyclic);
    }

    #[test]
    fn single_test_workload_runs_on_both_omqs() {
        let graph = random_graph(10, 20, 2);
        // Results differ between the two OMQs in general; we only check that
        // both paths execute.
        let _ = single_test_workload(&path_omq(), &graph);
        let _ = single_test_workload(&triangle_omq(), &graph);
    }
}
