//! Workload generators, hardness reductions, measurement utilities and the
//! experiment harness for the OMQ enumeration library.
//!
//! The paper contains no empirical evaluation (it is a theory paper), so the
//! experiments implemented here validate its *theorems* empirically:
//!
//! * E1 — Figure 1 (classification of the acyclicity notions);
//! * E2 — Proposition 3.3 / Theorem 3.1 (linear-time query-directed chase and
//!   single-testing);
//! * E3 — Theorem 4.1(1) (complete-answer enumeration: linear preprocessing,
//!   constant delay);
//! * E4 — Theorem 4.1(2) (all-testing);
//! * E5 — Theorem 5.2 / Algorithm 1 (minimal partial answers);
//! * E6 — Theorem 6.1 / Algorithm 2 (multi-wildcard answers);
//! * E7 — Theorems 3.4/3.6/5.1 (triangle-detection reductions);
//! * E8 — Theorems 4.4/4.6 (Boolean matrix multiplication reductions);
//! * E9 — Proposition 2.1 and the running example;
//! * E10 — comparison against the brute-force baseline;
//! * E11 — ablations (chase depth, memoisation);
//! * E12 — the plan/instance split: plan-reuse amortisation and
//!   columnar-vs-hash per-answer delay distributions;
//! * E17 — batched hot-path enumeration: `next_batch` dispatch amortisation
//!   and arena-vs-malloc chase staging;
//! * E18 — aggregate fast paths: non-materializing `count()`/`exists()`
//!   versus drain-and-count, allocation-free batched partial emission, and
//!   the chunked scan kernels versus scalar loops;
//! * E19 — the network front end (`omq-server`): closed-loop wire fetch
//!   latency (p50/p99), sustained request throughput, post-commit
//!   time-to-first-page, and the pinned-cursor isolation gate under a
//!   concurrent commit writer;
//! * E20 — distributed execution (`omq-cluster`): end-to-end speedup over
//!   real worker processes, shard-shipping volume, work-stealing placement,
//!   and the answers-equal gate including a worker killed mid-shard.
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! discussion and `cargo run -p omq-bench --bin harness --release` to
//! regenerate every table.  The harness also writes machine-readable
//! `BENCH_<exp>.json` reports (see [`report`]), which the perf-trajectory
//! lab (see [`trajectory`] and the `trajectory` binary) persists across
//! commits into `bench_history/` and gates CI on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod generators;
pub mod measure;
pub mod reductions;
pub mod report;
pub mod trajectory;

pub use experiments::{run_all, run_experiment, Table};
pub use generators::{university, UniversityConfig};
pub use measure::{measure_drain, measure_stream, DelayStats, DrainStats};
pub use report::write_json_reports;
pub use trajectory::{check as trajectory_check, GatedMetric, Regression, RunRecord};
