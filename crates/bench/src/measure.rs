//! Measurement utilities for the DelayClin / CD◦Lin experiments.
//!
//! `DelayClin` means: preprocessing linear in `‖D‖`, and the delay between two
//! consecutive answers bounded by a constant that does not depend on `D`.
//! These helpers record the preprocessing time and the distribution of
//! per-answer delays so that the experiments can check both halves of the
//! definition empirically.

use std::time::Instant;

/// Timing statistics of one enumeration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayStats {
    /// Wall-clock microseconds spent in the preprocessing closure.
    pub preprocess_micros: u128,
    /// Number of answers produced.
    pub answers: usize,
    /// Total enumeration time in microseconds.
    pub enumeration_micros: u128,
    /// Maximum delay between two consecutive answers (or between the start of
    /// the enumeration phase and the first answer), in nanoseconds.
    pub max_delay_nanos: u128,
    /// 99th-percentile delay in nanoseconds (more robust than the maximum
    /// against operating-system noise).
    pub p99_delay_nanos: u128,
    /// Mean delay in nanoseconds.
    pub mean_delay_nanos: u128,
    /// Time to the *first* answer after preprocessing, in nanoseconds — the
    /// serving-layer "time to first answer" (0 when no answer was produced).
    pub first_delay_nanos: u128,
}

impl DelayStats {
    /// Answers per second during the enumeration phase.
    pub fn throughput(&self) -> f64 {
        if self.enumeration_micros == 0 {
            return 0.0;
        }
        self.answers as f64 / (self.enumeration_micros as f64 / 1e6)
    }
}

/// Measures a two-phase computation.
///
/// * `preprocess` builds whatever state the enumeration needs;
/// * `enumerate` receives that state and a `tick` callback which it must call
///   once per produced answer.
pub fn measure_stream<S>(
    preprocess: impl FnOnce() -> S,
    enumerate: impl FnOnce(&mut S, &mut dyn FnMut()),
) -> DelayStats {
    let start = Instant::now();
    let mut state = preprocess();
    let preprocess_micros = start.elapsed().as_micros();

    let mut delays: Vec<u128> = Vec::new();
    let enumeration_start = Instant::now();
    let mut last = Instant::now();
    {
        let mut tick = || {
            let now = Instant::now();
            delays.push(now.duration_since(last).as_nanos());
            last = now;
        };
        enumerate(&mut state, &mut tick);
    }
    let enumeration_micros = enumeration_start.elapsed().as_micros();
    finish_stats(preprocess_micros, enumeration_micros, delays)
}

/// Measures a pull-based enumeration through its `Iterator` interface — the
/// metric the cursor API actually exposes to callers: `build` is the
/// preprocessing (e.g. `instance.answers(sem)`), and every `next()` call is
/// timed individually.
///
/// This measures the same quantity as [`measure_stream`]'s callback ticks,
/// but through the iterator seam, so experiments can assert that the pull
/// path has the same flat per-answer delay the paper states.
pub fn measure_iterator<I: Iterator>(build: impl FnOnce() -> I) -> DelayStats {
    measure_take_k(build, usize::MAX)
}

/// Like [`measure_iterator`], but stops after `k` answers — the cost profile
/// of a `take(k)` page: preprocessing plus `O(k)` enumeration work.
pub fn measure_take_k<I: Iterator>(build: impl FnOnce() -> I, k: usize) -> DelayStats {
    let start = Instant::now();
    let mut iter = build();
    let preprocess_micros = start.elapsed().as_micros();

    let mut delays: Vec<u128> = Vec::new();
    let enumeration_start = Instant::now();
    let mut last = Instant::now();
    for answer in iter.by_ref().take(k) {
        let now = Instant::now();
        delays.push(now.duration_since(last).as_nanos());
        last = now;
        std::hint::black_box(&answer);
    }
    let enumeration_micros = enumeration_start.elapsed().as_micros();
    // The rest of the stream is deliberately dropped unenumerated.
    drop(iter);
    finish_stats(preprocess_micros, enumeration_micros, delays)
}

/// Timing of one *drained* enumeration: total wall-clock only, no per-answer
/// clock reads.
///
/// [`measure_take_k`] calls `Instant::now` twice per answer to observe the
/// delay *distribution*; that observation overhead is itself on the order of
/// the constant being measured, so it is the wrong tool for comparing two
/// pull strategies (per-answer `next()` vs `next_batch` blocks).  A drain
/// measurement times the whole loop once and divides — the difference between
/// two drains is exactly the per-answer dispatch cost the batched API
/// amortises (experiment E17).
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainStats {
    /// Wall-clock microseconds spent in the build closure.
    pub preprocess_micros: u128,
    /// Number of answers drained.
    pub answers: usize,
    /// Total wall-clock nanoseconds of the drain loop.
    pub total_nanos: u128,
}

impl DrainStats {
    /// Mean per-answer cost of the drain, in nanoseconds.
    pub fn per_answer_nanos(&self) -> f64 {
        if self.answers == 0 {
            return 0.0;
        }
        self.total_nanos as f64 / self.answers as f64
    }
}

/// Measures a two-phase drain: `build` the source, then `drain` it to
/// exhaustion (returning how many answers were pulled).  Only two clock reads
/// bracket the drain — see [`DrainStats`] for why.
pub fn measure_drain<S>(
    build: impl FnOnce() -> S,
    drain: impl FnOnce(&mut S) -> usize,
) -> DrainStats {
    let start = Instant::now();
    let mut state = build();
    let preprocess_micros = start.elapsed().as_micros();
    let drain_start = Instant::now();
    let answers = drain(&mut state);
    let total_nanos = drain_start.elapsed().as_nanos();
    DrainStats {
        preprocess_micros,
        answers,
        total_nanos,
    }
}

fn finish_stats(
    preprocess_micros: u128,
    enumeration_micros: u128,
    delays: Vec<u128>,
) -> DelayStats {
    let answers = delays.len();
    let total_delay: u128 = delays.iter().sum();
    let max_delay = delays.iter().copied().max().unwrap_or(0);
    let p99_delay = if delays.is_empty() {
        0
    } else {
        let mut sorted = delays.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1).min(sorted.len() * 99 / 100)]
    };
    DelayStats {
        preprocess_micros,
        answers,
        enumeration_micros,
        max_delay_nanos: max_delay,
        p99_delay_nanos: p99_delay,
        mean_delay_nanos: if answers == 0 {
            0
        } else {
            total_delay / answers as u128
        },
        first_delay_nanos: delays.first().copied().unwrap_or(0),
    }
}

/// Least-squares slope and the coefficient of determination of `y ~ a·x + b`.
/// Used to report how close a preprocessing-time series is to linear.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 || syy == 0.0 {
        return (0.0, 1.0);
    }
    let slope = sxy / sxx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_answers_and_delays() {
        let stats = measure_stream(
            || (0..100).collect::<Vec<u32>>(),
            |state, tick| {
                for _ in state.iter() {
                    tick();
                }
            },
        );
        assert_eq!(stats.answers, 100);
        assert!(stats.max_delay_nanos >= stats.mean_delay_nanos);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn iterator_measurement_counts_and_bounds() {
        let stats = measure_iterator(|| 0..1000u32);
        assert_eq!(stats.answers, 1000);
        assert!(stats.first_delay_nanos > 0);
        let page = measure_take_k(|| 0..1000u32, 10);
        assert_eq!(page.answers, 10);
        let empty = measure_take_k(std::iter::empty::<u32>, 10);
        assert_eq!(empty.answers, 0);
        assert_eq!(empty.first_delay_nanos, 0);
    }

    #[test]
    fn drain_measurement_totals() {
        let stats = measure_drain(
            || (0..500u32).collect::<Vec<u32>>(),
            |v| {
                let mut n = 0;
                for x in v.iter() {
                    std::hint::black_box(x);
                    n += 1;
                }
                n
            },
        );
        assert_eq!(stats.answers, 500);
        assert!(stats.total_nanos > 0);
        assert!(stats.per_answer_nanos() > 0.0);
        let empty = measure_drain(|| (), |_| 0);
        assert_eq!(empty.answers, 0);
        assert_eq!(empty.per_answer_nanos(), 0.0);
    }

    #[test]
    fn empty_enumeration() {
        let stats = measure_stream(|| (), |_, _| {});
        assert_eq!(stats.answers, 0);
        assert_eq!(stats.mean_delay_nanos, 0);
    }

    #[test]
    fn linear_fit_of_a_line() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (slope, r2) = linear_fit(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_of_noise_is_not_perfect() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![1.0, 10.0, 2.0, 20.0];
        let (_, r2) = linear_fit(&xs, &ys);
        assert!(r2 < 0.99);
    }
}
