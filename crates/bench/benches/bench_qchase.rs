//! E2 — query-directed chase: preprocessing time as a function of |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::{university, UniversityConfig};
use omq_core::OmqEngine;
use std::time::Duration;

fn bench_qchase(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchase_preprocessing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for researchers in [1_000usize, 4_000, 16_000] {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        group.throughput(criterion::Throughput::Elements(db.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(researchers),
            &researchers,
            |b, _| {
                b.iter(|| OmqEngine::preprocess(&omq, &db).expect("guarded OMQ"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_qchase);
criterion_main!(benches);
