//! E10 — constant-delay engine vs the brute-force chase-and-join baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::{university, UniversityConfig};
use omq_chase::ChaseConfig;
use omq_core::{baseline::BruteForce, OmqEngine, Semantics};
use std::time::Duration;

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_baseline");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for researchers in [200usize, 400, 800] {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        group.bench_with_input(
            BenchmarkId::new("engine_partial", researchers),
            &researchers,
            |b, _| {
                b.iter(|| {
                    let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
                    engine
                        .answers(Semantics::MinimalPartial)
                        .expect("tractable")
                        .count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_partial", researchers),
            &researchers,
            |b, _| {
                b.iter(|| {
                    let brute = BruteForce::new(&omq, &db, &ChaseConfig::default()).expect("chase");
                    brute.minimal_partial().len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
