//! E4 — all-testing of complete answers (Theorem 4.1(2), Proposition 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::{university, UniversityConfig};
use omq_core::{OmqEngine, Semantics};
use omq_data::Value;
use std::time::Duration;

fn bench_all_testing(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_testing");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for researchers in [1_000usize, 4_000, 16_000] {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        let tester = engine.all_tester().expect("free-connex query");
        let answers: Vec<Vec<omq_data::ConstId>> = engine
            .answers(Semantics::Complete)
            .expect("tractable")
            .map(|a| a.into_complete().expect("complete semantics"))
            .collect();
        let candidates: Vec<Vec<Value>> = answers
            .iter()
            .take(256)
            .map(|a| a.iter().map(|&c| Value::Const(c)).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(researchers),
            &researchers,
            |b, _| {
                b.iter(|| {
                    candidates
                        .iter()
                        .filter(|c| tester.test(c).expect("arity matches"))
                        .count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_all_testing);
criterion_main!(benches);
