//! E7 — triangle reductions (Theorems 3.4 / 3.6 / 5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::random_graph;
use omq_bench::reductions;
use std::time::Duration;

fn bench_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_reduction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for n in [64usize, 128, 256] {
        let graph = random_graph(n, 3 * n, 42);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| reductions::has_triangle_direct(&graph));
        });
        group.bench_with_input(BenchmarkId::new("via_omq", n), &n, |b, _| {
            b.iter(|| reductions::has_triangle_via_omq(&graph));
        });
        group.bench_with_input(
            BenchmarkId::new("weakly_acyclic_single_test", n),
            &n,
            |b, _| {
                b.iter(|| reductions::single_test_workload(&reductions::path_omq(), &graph));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_triangle);
criterion_main!(benches);
