//! E8 — Boolean matrix multiplication reductions (Theorems 4.4 / 4.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::sparse_boolean_matrix;
use omq_bench::reductions;
use std::time::Duration;

fn bench_bmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmm_reduction");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for n in [64usize, 128, 256] {
        let m1 = sparse_boolean_matrix(n, 4 * n, 1);
        let m2 = sparse_boolean_matrix(n, 4 * n, 2);
        group.bench_with_input(BenchmarkId::new("direct_spbmm", n), &n, |b, _| {
            b.iter(|| m1.multiply(&m2));
        });
        group.bench_with_input(BenchmarkId::new("via_enumeration", n), &n, |b, _| {
            b.iter(|| reductions::multiply_via_enumeration(&m1, &m2));
        });
        let db = reductions::bmm_database(&m1, &m2);
        group.bench_with_input(BenchmarkId::new("free_connex_variant", n), &n, |b, _| {
            b.iter(|| {
                let structure =
                    omq_core::FreeConnexStructure::build(&reductions::bmm_full_query(), &db, false)
                        .expect("free-connex query");
                omq_core::collect_answers(&structure).len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bmm);
criterion_main!(benches);
