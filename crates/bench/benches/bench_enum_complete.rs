//! E3 — constant-delay enumeration of complete answers (Theorem 4.1(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::{university, UniversityConfig};
use omq_core::{OmqEngine, Semantics};
use std::time::Duration;

fn bench_enum_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_complete");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for researchers in [1_000usize, 4_000, 16_000] {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            ..Default::default()
        });
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        group.bench_with_input(
            BenchmarkId::from_parameter(researchers),
            &researchers,
            |b, _| {
                b.iter(|| {
                    let mut count = 0usize;
                    count += engine
                        .answers(Semantics::Complete)
                        .expect("tractable")
                        .count();
                    count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enum_complete);
criterion_main!(benches);
