//! E6 — Algorithm 2: enumeration of minimal partial answers with
//! multi-wildcards (Theorem 6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omq_bench::generators::{university, UniversityConfig};
use omq_core::{OmqEngine, Semantics};
use std::time::Duration;

fn bench_enum_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_minimal_partial_multi");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    for researchers in [500usize, 1_000, 2_000] {
        let (omq, db) = university(&UniversityConfig {
            researchers,
            office_ratio: 0.6,
            building_ratio: 0.6,
            ..Default::default()
        });
        let engine = OmqEngine::preprocess(&omq, &db).expect("guarded OMQ");
        group.bench_with_input(
            BenchmarkId::from_parameter(researchers),
            &researchers,
            |b, _| {
                b.iter(|| {
                    let mut count = 0usize;
                    count += engine
                        .answers(Semantics::MinimalPartialMulti)
                        .expect("tractable")
                        .count();
                    count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enum_multi);
criterion_main!(benches);
