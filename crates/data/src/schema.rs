//! Schemas: finite sets of relation symbols with associated arities.

use crate::error::DataError;
use crate::Result;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a relation symbol within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelId(pub u32);

/// A relation symbol: a name together with an arity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Symbol name as written in queries / ontologies.
    pub name: String,
    /// Number of argument positions.
    pub arity: usize,
}

/// A schema `S`: a finite set of relation symbols with arities.
///
/// Relation symbols are interned into dense [`RelId`]s so that per-relation
/// side tables can be simple vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    relations: Vec<Relation>,
    #[serde(skip)]
    by_name: FxHashMap<String, RelId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or re-uses) a relation symbol with the given arity.
    ///
    /// Returns an error if the symbol was previously declared with a different
    /// arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelId> {
        if let Some(&id) = self.by_name.get(name) {
            let existing = &self.relations[id.0 as usize];
            if existing.arity != arity {
                return Err(DataError::ConflictingArity {
                    relation: name.to_owned(),
                    first: existing.arity,
                    second: arity,
                });
            }
            return Ok(id);
        }
        let id = RelId(u32::try_from(self.relations.len()).expect("schema overflow"));
        self.relations.push(Relation {
            name: name.to_owned(),
            arity,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up a relation symbol by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a relation symbol by name, returning an error if absent.
    pub fn require(&self, name: &str) -> Result<RelId> {
        self.relation_id(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_owned()))
    }

    /// Returns the metadata of a relation symbol.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Returns the arity of a relation symbol.
    pub fn arity(&self, id: RelId) -> usize {
        self.relations[id.0 as usize].arity
    }

    /// Returns the name of a relation symbol.
    pub fn name(&self, id: RelId) -> &str {
        &self.relations[id.0 as usize].name
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` if the schema has no relation symbols.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over all relation symbols in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Returns `true` if `other` declares a subset of this schema's relation
    /// symbols with identical arities.
    pub fn contains_schema(&self, other: &Schema) -> bool {
        other.iter().all(|(_, rel)| {
            self.relation_id(&rel.name)
                .map(|id| self.arity(id) == rel.arity)
                .unwrap_or(false)
        })
    }

    /// Merges another schema into this one, returning an error on arity
    /// conflicts.
    pub fn merge(&mut self, other: &Schema) -> Result<()> {
        for (_, rel) in other.iter() {
            self.add_relation(&rel.name, rel.arity)?;
        }
        Ok(())
    }

    /// Rebuilds the name index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RelId(i as u32)))
            .collect();
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (_, rel) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}/{}", rel.name, rel.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut schema = Schema::new();
        let r = schema.add_relation("HasOffice", 2).unwrap();
        let a = schema.add_relation("Researcher", 1).unwrap();
        assert_ne!(r, a);
        assert_eq!(schema.relation_id("HasOffice"), Some(r));
        assert_eq!(schema.arity(r), 2);
        assert_eq!(schema.name(a), "Researcher");
        assert_eq!(schema.len(), 2);
    }

    #[test]
    fn duplicate_same_arity_is_ok() {
        let mut schema = Schema::new();
        let a = schema.add_relation("R", 2).unwrap();
        let b = schema.add_relation("R", 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn conflicting_arity_is_error() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let err = schema.add_relation("R", 3).unwrap_err();
        assert!(matches!(err, DataError::ConflictingArity { .. }));
    }

    #[test]
    fn require_unknown() {
        let schema = Schema::new();
        assert!(matches!(
            schema.require("Nope"),
            Err(DataError::UnknownRelation(_))
        ));
    }

    #[test]
    fn merge_and_contains() {
        let mut s1 = Schema::new();
        s1.add_relation("R", 2).unwrap();
        let mut s2 = Schema::new();
        s2.add_relation("R", 2).unwrap();
        s2.add_relation("A", 1).unwrap();
        assert!(!s1.contains_schema(&s2));
        s1.merge(&s2).unwrap();
        assert!(s1.contains_schema(&s2));
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn display_lists_relations() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("A", 1).unwrap();
        assert_eq!(format!("{s}"), "R/2, A/1");
    }
}
