//! Finite instances and databases with RAM-model style lookup indexes.

use crate::columnar::ColumnarIndex;
use crate::error::DataError;
use crate::fact::Fact;
use crate::interner::Interner;
use crate::schema::{RelId, Schema};
use crate::value::{ConstId, NullId, Value};
use crate::Result;
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Sentinel for "value has no code yet" in the dense code tables.
const NO_CODE: u32 = u32::MAX;

/// A finite instance over a [`Schema`].
///
/// Following the paper, an *S-database* is a finite instance that uses only
/// constants; instances produced by the chase may also contain labelled nulls.
/// `Database` represents both: [`Database::has_nulls`] distinguishes them.
///
/// The structure maintains the constant-time lookup tables of the RAM model
/// used in the paper as **dense columnar indexes** rather than hash maps:
///
/// * facts grouped by relation symbol (`by_relation`),
/// * every active-domain value carries a dense *value code* (its index in
///   `adom(D)`), maintained incrementally via per-kind code tables,
/// * a [`ColumnarIndex`] — CSR arrays keyed by `(relation, position)` and by
///   value code — built lazily in one linear pass and invalidated by every
///   mutation, see [`crate::columnar`] for the invariants,
/// * an **incremental Gaifman component index**: a union-find over value
///   codes with intrusive per-component fact lists, maintained by
///   [`Database::add_fact`] in near-constant amortised time, so delta-chase
///   maintenance can locate and extract a dirty component in time
///   proportional to that component — never by rescanning the fact table.
#[derive(Debug, Default)]
pub struct Database {
    schema: Schema,
    /// The constant interner, shared copy-on-write: read-only clones (shards,
    /// derived instances, chase copies) all point at the same snapshot, and
    /// only a database that interns a *new* constant pays for a private copy.
    consts: Arc<Interner>,
    facts: Vec<Fact>,
    /// Fact-dedup index: hash of `(rel, args)` → indices into `facts` with
    /// that hash (almost always one).  Keyed by hash instead of by owned
    /// `Fact` so membership tests take a *borrowed* `(RelId, &[Value])` pair
    /// — the chase's saturation loop probes candidate facts without building
    /// them — and so inserting never clones the fact a second time.
    fact_lookup: FxHashMap<u64, Vec<u32>>,
    by_relation: Vec<Vec<usize>>,
    adom: Vec<Value>,
    /// `ConstId` → value code (`NO_CODE` if the constant is not in the adom).
    const_code: Vec<u32>,
    /// `NullId` → value code (`NO_CODE` if the null is not in the adom).
    null_code: Vec<u32>,
    /// Lazily built columnar index; reset on every mutation.
    columnar: OnceLock<ColumnarIndex>,
    /// Incremental union-find over dense value codes: `comp_parent[c]` is the
    /// parent of code `c`, roots satisfy `comp_parent[c] == c`.  Two codes
    /// share a root iff their values are in the same Gaifman connected
    /// component.  Maintained by `add_fact` with path-halving finds.
    comp_parent: Vec<u32>,
    /// Head of the intrusive fact list of the component rooted at each code
    /// (`NO_CODE` if empty).  Non-empty only at canonical roots: unions
    /// concatenate the lists in O(1) and clear the absorbed root's slots.
    comp_head: Vec<u32>,
    /// Tail of the intrusive per-root fact list (`NO_CODE` if empty).
    comp_tail: Vec<u32>,
    /// Per-fact `next` pointer of the intrusive component fact lists
    /// (`NO_CODE` terminates a list).
    comp_next: Vec<u32>,
    /// Indices of nullary facts (no arguments): the pseudo-component.
    nullary_facts: Vec<u32>,
    next_null: u32,
    /// Monotone mutation counter: bumped by every operation that changes the
    /// fact table or the schema (`add_fact`, `add_relation`, `absorb`).  The
    /// columnar index records the revision it was built at, and store
    /// epochs/snapshots use it as a cheap identity tag.
    revision: u64,
}

impl Clone for Database {
    /// Clones the data but not the lazily built columnar index: clones are
    /// usually taken to be extended (chase, absorb), which would invalidate
    /// the index immediately, and a read-only clone simply rebuilds it on
    /// first lookup for the same linear cost the copy would have paid.
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            consts: self.consts.clone(),
            facts: self.facts.clone(),
            fact_lookup: self.fact_lookup.clone(),
            by_relation: self.by_relation.clone(),
            adom: self.adom.clone(),
            const_code: self.const_code.clone(),
            null_code: self.null_code.clone(),
            columnar: OnceLock::new(),
            comp_parent: self.comp_parent.clone(),
            comp_head: self.comp_head.clone(),
            comp_tail: self.comp_tail.clone(),
            comp_next: self.comp_next.clone(),
            nullary_facts: self.nullary_facts.clone(),
            next_null: self.next_null,
            revision: self.revision,
        }
    }
}

impl Database {
    /// Creates an empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let relation_count = schema.len();
        Database {
            schema,
            consts: Arc::new(Interner::new()),
            facts: Vec::new(),
            fact_lookup: FxHashMap::default(),
            by_relation: vec![Vec::new(); relation_count],
            adom: Vec::new(),
            const_code: Vec::new(),
            null_code: Vec::new(),
            columnar: OnceLock::new(),
            comp_parent: Vec::new(),
            comp_head: Vec::new(),
            comp_tail: Vec::new(),
            comp_next: Vec::new(),
            nullary_facts: Vec::new(),
            next_null: 0,
            revision: 0,
        }
    }

    /// Starts a fluent [`DatabaseBuilder`] over `schema`.
    pub fn builder(schema: Schema) -> DatabaseBuilder {
        DatabaseBuilder {
            db: Database::new(schema),
            error: None,
        }
    }

    /// The schema of this database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Declares an additional relation symbol (used when extending a database
    /// with auxiliary relations such as the `P_db` relativisation predicate).
    ///
    /// Relations may be declared after facts exist: the per-relation fact
    /// lists are extended and the columnar index is invalidated so that the
    /// next lookup sees columns for the new symbol as well.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> Result<RelId> {
        let before = self.schema.len();
        let id = self.schema.add_relation(name, arity)?;
        if self.schema.len() > before {
            while self.by_relation.len() < self.schema.len() {
                self.by_relation.push(Vec::new());
            }
            // A previously built index has no columns for the new relation;
            // rebuild on the next lookup.  Re-declaring an existing relation
            // (same arity) is a true no-op: the index and revision stand.
            self.columnar = OnceLock::new();
            self.revision += 1;
        }
        Ok(id)
    }

    /// Interns a constant name, returning its identifier.
    ///
    /// If the interner snapshot is shared with other databases (clones,
    /// shards) and `name` is new, this copies the snapshot first
    /// (copy-on-write); readers of the shared snapshot are unaffected.
    pub fn intern_const(&mut self, name: &str) -> ConstId {
        if let Some(id) = self.consts.get(name) {
            return ConstId(id);
        }
        ConstId(Arc::make_mut(&mut self.consts).intern(name))
    }

    /// Returns `true` iff `self` and `other` share the same interner
    /// snapshot (no constant was interned in either since they diverged).
    pub fn shares_interner_with(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.consts, &other.consts)
    }

    /// Looks up a constant by name without interning it.
    pub fn const_id(&self, name: &str) -> Option<ConstId> {
        self.consts.get(name).map(ConstId)
    }

    /// Returns the name of an interned constant.
    pub fn const_name(&self, id: ConstId) -> &str {
        self.consts.resolve(id.0)
    }

    /// Renders a value for display: constant names, or `*k` style nulls.
    pub fn display_value(&self, v: Value) -> String {
        match v {
            Value::Const(c) => self
                .consts
                .try_resolve(c.0)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("c{}", c.0)),
            Value::Null(NullId(n)) => format!("_:n{n}"),
        }
    }

    /// Creates a fresh labelled null that does not occur in this database.
    pub fn fresh_null(&mut self) -> NullId {
        let id = NullId(self.next_null);
        self.next_null += 1;
        id
    }

    /// Number of labelled nulls allocated so far (fresh-null counter).
    pub fn null_counter(&self) -> u32 {
        self.next_null
    }

    /// Bumps the fresh-null counter so that it exceeds `n`.  Used when copying
    /// facts from another instance.
    pub fn reserve_null(&mut self, n: NullId) {
        self.next_null = self.next_null.max(n.0 + 1);
    }

    /// Adds a fact constructed from a relation name and constant names,
    /// interning the constants on the fly.
    pub fn add_named_fact<S: AsRef<str>>(&mut self, relation: &str, args: &[S]) -> Result<bool> {
        let rel = self.schema.require(relation)?;
        let arity = self.schema.arity(rel);
        if arity != args.len() {
            return Err(DataError::ArityMismatch {
                relation: relation.to_owned(),
                expected: arity,
                actual: args.len(),
            });
        }
        let values: Vec<Value> = args
            .iter()
            .map(|a| Value::Const(self.intern_const(a.as_ref())))
            .collect();
        self.add_fact(Fact::new(rel, values))
    }

    /// Adds a fact, returning `Ok(true)` if it was new and `Ok(false)` if it
    /// was already present.
    pub fn add_fact(&mut self, fact: Fact) -> Result<bool> {
        let arity = self.schema.arity(fact.rel);
        if arity != fact.args.len() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name(fact.rel).to_owned(),
                expected: arity,
                actual: fact.args.len(),
            });
        }
        if self.contains_fact_ref(fact.rel, &fact.args) {
            return Ok(false);
        }
        self.insert_new_fact(fact);
        Ok(true)
    }

    /// Adds a fact given by relation id and a **borrowed** argument slice —
    /// the allocation-conscious twin of [`Database::add_fact`].  A duplicate
    /// costs one hash probe and zero allocations; only a genuinely new fact
    /// copies `args` into the fact table.  This is the append path the
    /// arena-backed chase drives: candidate facts live in a bump arena and
    /// are only materialised here when they turn out to be new.
    pub fn add_fact_ref(&mut self, rel: RelId, args: &[Value]) -> Result<bool> {
        let arity = self.schema.arity(rel);
        if arity != args.len() {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name(rel).to_owned(),
                expected: arity,
                actual: args.len(),
            });
        }
        if self.contains_fact_ref(rel, args) {
            return Ok(false);
        }
        self.insert_new_fact(Fact::new(rel, args.to_vec()));
        Ok(true)
    }

    /// The shared insert path behind [`Database::add_fact`] /
    /// [`Database::add_fact_ref`].  The caller has checked the arity and that
    /// the fact is not present.
    fn insert_new_fact(&mut self, fact: Fact) {
        let idx = self.facts.len();
        for &v in &fact.args {
            self.assign_code(v);
            if let Value::Null(n) = v {
                self.reserve_null(n);
            }
        }
        // Maintain the incremental component index: all argument values of a
        // fact are Gaifman-connected, so union their codes and append the
        // fact to the surviving root's intrusive list.
        self.comp_next.push(NO_CODE);
        match fact.args.first() {
            Some(&head) => {
                let code = self.value_code(head).expect("code assigned above");
                let mut root = self.find_compress(code);
                for &v in &fact.args[1..] {
                    let code = self.value_code(v).expect("code assigned above");
                    let other = self.find_compress(code);
                    root = self.union_roots(root, other);
                }
                self.append_to_component(root, idx as u32);
            }
            None => self.nullary_facts.push(idx as u32),
        }
        self.by_relation[fact.rel.0 as usize].push(idx);
        let key = Self::fact_key(fact.rel, &fact.args);
        self.fact_lookup
            .entry(key)
            .or_default()
            .push(u32::try_from(idx).expect("fact table overflow"));
        self.facts.push(fact);
        self.columnar = OnceLock::new();
        self.revision += 1;
    }

    /// The dedup-index key of a fact: an FxHash over `(rel, args)`.
    #[inline]
    fn fact_key(rel: RelId, args: &[Value]) -> u64 {
        let mut hasher = FxHasher::default();
        rel.hash(&mut hasher);
        args.hash(&mut hasher);
        hasher.finish()
    }

    /// Assigns a dense value code to `v` if it does not have one yet,
    /// extending the active domain.
    fn assign_code(&mut self, v: Value) {
        let table = match v {
            Value::Const(ConstId(c)) => {
                if self.const_code.len() <= c as usize {
                    self.const_code.resize(c as usize + 1, NO_CODE);
                }
                &mut self.const_code[c as usize]
            }
            Value::Null(NullId(n)) => {
                if self.null_code.len() <= n as usize {
                    self.null_code.resize(n as usize + 1, NO_CODE);
                }
                &mut self.null_code[n as usize]
            }
        };
        if *table == NO_CODE {
            let code = u32::try_from(self.adom.len()).expect("adom overflow");
            *table = code;
            self.adom.push(v);
            // A fresh value starts as its own singleton component.
            self.comp_parent.push(code);
            self.comp_head.push(NO_CODE);
            self.comp_tail.push(NO_CODE);
        }
    }

    /// Read-only union-find lookup: walks parents without compressing.
    fn find(&self, mut i: u32) -> u32 {
        while self.comp_parent[i as usize] != i {
            i = self.comp_parent[i as usize];
        }
        i
    }

    /// Union-find lookup with path halving (mutating fast path).
    fn find_compress(&mut self, mut i: u32) -> u32 {
        while self.comp_parent[i as usize] != i {
            let grand = self.comp_parent[self.comp_parent[i as usize] as usize];
            self.comp_parent[i as usize] = grand;
            i = grand;
        }
        i
    }

    /// Unions two canonical roots, concatenating `a`'s fact list onto `b`'s
    /// in O(1), and returns the surviving root.
    fn union_roots(&mut self, a: u32, b: u32) -> u32 {
        if a == b {
            return a;
        }
        self.comp_parent[a as usize] = b;
        if self.comp_head[a as usize] != NO_CODE {
            if self.comp_head[b as usize] == NO_CODE {
                self.comp_head[b as usize] = self.comp_head[a as usize];
            } else {
                self.comp_next[self.comp_tail[b as usize] as usize] = self.comp_head[a as usize];
            }
            self.comp_tail[b as usize] = self.comp_tail[a as usize];
            self.comp_head[a as usize] = NO_CODE;
            self.comp_tail[a as usize] = NO_CODE;
        }
        b
    }

    /// Appends fact `idx` to the intrusive fact list of the canonical root
    /// `root` (`comp_next[idx]` must already exist and terminate the list).
    fn append_to_component(&mut self, root: u32, idx: u32) {
        if self.comp_head[root as usize] == NO_CODE {
            self.comp_head[root as usize] = idx;
        } else {
            self.comp_next[self.comp_tail[root as usize] as usize] = idx;
        }
        self.comp_tail[root as usize] = idx;
    }

    /// The dense value code of `v` (its index in [`Database::adom`]), if the
    /// value occurs in the database.  A dense-array lookup, no hashing.
    #[inline]
    pub fn value_code(&self, v: Value) -> Option<u32> {
        let code = match v {
            Value::Const(ConstId(c)) => self.const_code.get(c as usize),
            Value::Null(NullId(n)) => self.null_code.get(n as usize),
        };
        match code {
            Some(&c) if c != NO_CODE => Some(c),
            _ => None,
        }
    }

    /// The columnar index of this database, building it in one linear pass if
    /// a mutation invalidated (or nothing yet requested) it.
    pub fn columnar(&self) -> &ColumnarIndex {
        let index = self.columnar.get_or_init(|| ColumnarIndex::build(self));
        // Mutations drop the index, so a reachable index is always current.
        debug_assert_eq!(index.revision(), self.revision);
        index
    }

    /// The columnar index if it has already been built (and not invalidated
    /// by a mutation) — never triggers a build.
    pub fn columnar_if_built(&self) -> Option<&ColumnarIndex> {
        self.columnar.get()
    }

    /// Verifies that the built columnar index (if any) matches this
    /// database's revision, surfacing [`DataError::StaleIndex`] as a typed
    /// error instead of the internal debug assertion.  Executors that splice
    /// previously indexed shards into a refreshed instance call this before
    /// serving lookups from the reused index; a database without a built
    /// index trivially passes (the next lookup builds a current one).
    pub fn verify_columnar(&self) -> Result<()> {
        match self.columnar.get() {
            Some(index) => index.verify_against(self),
            None => Ok(()),
        }
    }

    /// The monotone mutation counter of this database: bumped by every
    /// `add_fact`/`add_relation`/`absorb`.  Two databases cloned from one
    /// another diverge in revision as soon as either mutates, which makes the
    /// revision a cheap identity tag for copy-on-write snapshots.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Returns `true` iff the fact is present.
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.contains_fact_ref(fact.rel, &fact.args)
    }

    /// Borrowed-key membership test: like [`Database::contains_fact`] but
    /// without requiring an owned [`Fact`], so hot loops (chase saturation,
    /// differential harnesses) can probe without allocating.
    pub fn contains_fact_ref(&self, rel: RelId, args: &[Value]) -> bool {
        match self.fact_lookup.get(&Self::fact_key(rel, args)) {
            Some(indices) => indices.iter().any(|&idx| {
                let fact = &self.facts[idx as usize];
                fact.rel == rel && fact.args == args
            }),
            None => false,
        }
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The total size `‖D‖`: number of facts weighted by arity (plus one per
    /// fact for the relation symbol).  This is the size measure used by the
    /// paper's linear-time claims.
    pub fn size(&self) -> usize {
        self.facts.iter().map(|f| f.args.len() + 1).sum()
    }

    /// All facts, in insertion order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Fact at a given index.
    pub fn fact(&self, idx: usize) -> &Fact {
        &self.facts[idx]
    }

    /// Indices of the facts over a relation symbol.
    pub fn facts_of(&self, rel: RelId) -> &[usize] {
        self.by_relation
            .get(rel.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Indices of the facts over `rel` whose argument at `pos` equals `value`.
    ///
    /// Served from the dense [`ColumnarIndex`]: a value-code array lookup
    /// followed by a CSR slice — no hashing.
    pub fn facts_with(&self, rel: RelId, pos: usize, value: Value) -> &[usize] {
        match self.value_code(value) {
            Some(code) => self.columnar().facts_with_code(rel, pos, code),
            None => &[],
        }
    }

    /// Indices of the facts mentioning `value` in any position.
    pub fn facts_mentioning(&self, value: Value) -> &[usize] {
        match self.value_code(value) {
            Some(code) => self.columnar().facts_mentioning_code(code),
            None => &[],
        }
    }

    /// Iterates over fact indices of `rel` matching a partial binding: the
    /// binding assigns a concrete value to some positions (`Some`) and leaves
    /// others free (`None`).  The most selective bound position's index is
    /// used when available.
    pub fn facts_matching(&self, rel: RelId, binding: &[Option<Value>]) -> Vec<usize> {
        debug_assert_eq!(binding.len(), self.schema.arity(rel));
        let mut best: Option<&[usize]> = None;
        for (pos, b) in binding.iter().enumerate() {
            if let Some(v) = b {
                let candidates = self.facts_with(rel, pos, *v);
                if best.map(|b| candidates.len() < b.len()).unwrap_or(true) {
                    best = Some(candidates);
                }
            }
        }
        let candidates = best.unwrap_or_else(|| self.facts_of(rel));
        candidates
            .iter()
            .copied()
            .filter(|&idx| {
                let fact = &self.facts[idx];
                binding
                    .iter()
                    .zip(&fact.args)
                    .all(|(b, &actual)| b.map(|expected| expected == actual).unwrap_or(true))
            })
            .collect()
    }

    /// The active domain `adom(D)` in first-occurrence order.
    pub fn adom(&self) -> &[Value] {
        &self.adom
    }

    /// Returns `true` iff `value` occurs in the database.
    pub fn in_adom(&self, value: Value) -> bool {
        self.value_code(value).is_some()
    }

    /// The constants of the active domain.
    pub fn adom_consts(&self) -> Vec<ConstId> {
        self.adom.iter().filter_map(|v| v.as_const()).collect()
    }

    /// The labelled nulls of the active domain.
    pub fn adom_nulls(&self) -> Vec<NullId> {
        self.adom.iter().filter_map(|v| v.as_null()).collect()
    }

    /// Returns `true` iff the instance mentions at least one labelled null.
    pub fn has_nulls(&self) -> bool {
        self.adom.iter().any(|v| v.is_null())
    }

    /// Restriction `D|_S`: the facts that mention only values from `keep`.
    pub fn restrict_to(&self, keep: &FxHashSet<Value>) -> Database {
        let mut out = Database::new(self.schema.clone());
        out.consts = self.consts.clone();
        out.next_null = self.next_null;
        for fact in &self.facts {
            if fact.args.iter().all(|v| keep.contains(v)) {
                out.add_fact(fact.clone()).expect("schema preserved");
            }
        }
        out
    }

    /// Returns `true` iff `values` is a *guarded set*: some fact mentions all
    /// of them.
    pub fn is_guarded_set(&self, values: &[Value]) -> bool {
        if values.is_empty() {
            return true;
        }
        let candidates = self.facts_mentioning(values[0]);
        candidates.iter().any(|&idx| {
            let fact = &self.facts[idx];
            values.iter().all(|v| fact.args.contains(v))
        })
    }

    /// Copies all facts of `other` into `self` (schemas are merged).
    pub fn absorb(&mut self, other: &Database) -> Result<()> {
        self.schema.merge(other.schema())?;
        while self.by_relation.len() < self.schema.len() {
            self.by_relation.push(Vec::new());
        }
        self.columnar = OnceLock::new();
        self.revision += 1;
        // Relation ids may differ between the two schemas; remap by name.
        for fact in other.facts() {
            let name = other.schema().name(fact.rel).to_owned();
            let rel = self.schema.require(&name)?;
            // Constants are also interned by name to keep identifiers coherent.
            let args = fact
                .args
                .iter()
                .map(|&v| match v {
                    Value::Const(c) => Value::Const(self.intern_const(other.const_name(c))),
                    Value::Null(n) => Value::Null(n),
                })
                .collect();
            self.add_fact(Fact::new(rel, args))?;
        }
        Ok(())
    }

    /// Shares this database's constant interner with a fresh empty database
    /// over the same schema.  Useful for derived instances (e.g. the chase)
    /// that must agree on constant identifiers.
    pub fn derived_empty(&self) -> Database {
        let mut out = Database::new(self.schema.clone());
        out.consts = self.consts.clone();
        out.next_null = self.next_null;
        out
    }

    // ------------------------------------------------------------------
    // Gaifman-component sharding.
    // ------------------------------------------------------------------

    /// Assigns every fact the (dense) id of its Gaifman connected component.
    ///
    /// Two values are connected when they co-occur in a fact, so all values
    /// of one fact share a component and the label of any argument labels the
    /// fact.  Nullary facts (propositional relations) have no values; they
    /// are grouped into one pseudo-component of their own.  Returns the
    /// per-fact labels and the number of components; labels are dense
    /// (`0..count`) in order of first appearance in the fact table.
    ///
    /// Served from the incrementally maintained union-find (one linear pass
    /// over the fact table, no re-derivation of the partition).
    pub fn fact_components(&self) -> (Vec<u32>, usize) {
        const UNLABELLED: u32 = u32::MAX;
        let mut label_of_root: Vec<u32> = vec![UNLABELLED; self.adom.len()];
        let mut nullary_label = UNLABELLED;
        let mut count = 0u32;
        let mut labels = Vec::with_capacity(self.facts.len());
        for fact in &self.facts {
            let label = match fact.args.first() {
                Some(&v) => {
                    let code = self.value_code(v).expect("fact values are in the adom");
                    let root = self.find(code) as usize;
                    if label_of_root[root] == UNLABELLED {
                        label_of_root[root] = count;
                        count += 1;
                    }
                    label_of_root[root]
                }
                None => {
                    if nullary_label == UNLABELLED {
                        nullary_label = count;
                        count += 1;
                    }
                    nullary_label
                }
            };
            labels.push(label);
        }
        (labels, count as usize)
    }

    /// The canonical component root — a dense value code — of the Gaifman
    /// connected component containing `v`, or `None` if `v` does not occur
    /// in the database.
    ///
    /// Roots are a property of the current partition: a later insert can
    /// merge two components, after which both old roots resolve (via
    /// [`Database::component_root_of_code`]) to one surviving root.  Value
    /// codes are append-stable, so a root obtained at an older revision can
    /// always be re-canonicalised against a newer clone of the database.
    pub fn component_root(&self, v: Value) -> Option<u32> {
        self.value_code(v).map(|code| self.find(code))
    }

    /// Re-canonicalises a dense value code (possibly obtained from an older
    /// revision of this database's lineage) to its current component root.
    /// Returns `None` if the code is out of range for this database.
    pub fn component_root_of_code(&self, code: u32) -> Option<u32> {
        ((code as usize) < self.comp_parent.len()).then(|| self.find(code))
    }

    /// The fact indices of the component canonically rooted at `root`, in
    /// insertion order.  `root` must be a canonical root (as returned by
    /// [`Database::component_root`]); a non-canonical code yields an empty
    /// list because unions move the intrusive fact list to the surviving
    /// root.  Costs time proportional to the component, not the database.
    pub fn component_fact_indices(&self, root: u32) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = match self.comp_head.get(root as usize) {
            Some(&head) => head,
            None => return out,
        };
        while cur != NO_CODE {
            out.push(cur as usize);
            cur = self.comp_next[cur as usize];
        }
        // Unions concatenate lists, so restore global insertion order.
        out.sort_unstable();
        out
    }

    /// The indices of the nullary facts (the pseudo-component), in insertion
    /// order.
    pub fn nullary_fact_indices(&self) -> &[u32] {
        &self.nullary_facts
    }

    /// Extracts the single component rooted at `root` as an independent
    /// database sharing this database's interner snapshot (like one shard of
    /// [`Database::shard_by_component`]).  Time proportional to the
    /// component.
    pub fn component_database(&self, root: u32) -> Database {
        let mut out = self.derived_empty();
        for idx in self.component_fact_indices(root) {
            out.add_fact(self.facts[idx].clone())
                .expect("shard schema is a clone of the parent schema");
        }
        out
    }

    /// Extracts the nullary pseudo-component as an independent database
    /// sharing this database's interner snapshot.
    pub fn nullary_database(&self) -> Database {
        let mut out = self.derived_empty();
        for &idx in &self.nullary_facts {
            out.add_fact(self.facts[idx as usize].clone())
                .expect("shard schema is a clone of the parent schema");
        }
        out
    }

    /// Partitions the facts into one database per Gaifman component, each
    /// tagged with its stable key: the canonical component root (`None` for
    /// the nullary pseudo-component, which sorts last).  This is the keyed
    /// form of [`Database::shard_by_component`] used by delta-chase
    /// maintenance, which must recognise untouched components across
    /// revisions of one database lineage.
    pub fn shard_by_component_keyed(&self) -> Vec<(Option<u32>, Database)> {
        let mut out = Vec::new();
        for code in 0..self.comp_head.len() {
            // Non-empty fact lists live only at canonical roots.
            if self.comp_head[code] != NO_CODE {
                let root = code as u32;
                out.push((Some(root), self.component_database(root)));
            }
        }
        if !self.nullary_facts.is_empty() {
            out.push((None, self.nullary_database()));
        }
        out
    }

    /// Number of connected components of the Gaifman graph (values that
    /// occur in no fact do not count; nullary facts contribute at most one
    /// pseudo-component).
    pub fn component_count(&self) -> usize {
        self.fact_components().1
    }

    /// Partitions the facts by Gaifman connected component into independent
    /// sub-databases: one database per component, each over a clone of the
    /// schema and **sharing this database's interner snapshot** (see
    /// [`Database::shares_interner_with`]), so constant identifiers coincide
    /// across all shards and with the parent.
    ///
    /// The union of the shards' fact sets is exactly this database's fact
    /// set, and no fact mentions values from two shards.  An empty database
    /// yields a single empty shard.
    pub fn shard_by_component(&self) -> Vec<Database> {
        self.shard_into(usize::MAX)
    }

    /// Like [`Database::shard_by_component`], but groups the components into
    /// at most `max_shards` sub-databases, balanced by fact count (greedy
    /// largest-component-first bin packing).  Grouping preserves the sharding
    /// invariant — no fact spans two shards — because every group is a union
    /// of whole components.  Always returns at least one database.
    pub fn shard_into(&self, max_shards: usize) -> Vec<Database> {
        self.try_shard_into(max_shards)
            .unwrap_or_else(|| vec![self.clone()])
    }

    /// Like [`Database::shard_into`], but returns `None` — without copying
    /// any fact — when there is nothing to split (a single component, a
    /// single requested shard, or an empty database).  This is the form the
    /// parallel executor probes on its hot path, where the single-shard case
    /// must not pay for a database clone it would immediately discard.
    pub fn try_shard_into(&self, max_shards: usize) -> Option<Vec<Database>> {
        let (labels, count) = self.fact_components();
        let bins = max_shards.max(1).min(count.max(1));
        if count <= 1 || bins == 1 {
            return None;
        }
        // Component sizes, then greedy assignment of components to bins.
        let mut sizes = vec![0usize; count];
        for &label in &labels {
            sizes[label as usize] += 1;
        }
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(sizes[c]));
        let mut load = vec![0usize; bins];
        let mut bin_of_component = vec![0u32; count];
        for c in order {
            let bin = (0..bins).min_by_key(|&b| (load[b], b)).expect("bins >= 1");
            bin_of_component[c] = bin as u32;
            load[bin] += sizes[c];
        }
        let mut shards: Vec<Database> = (0..bins).map(|_| self.derived_empty()).collect();
        for (fact, &label) in self.facts.iter().zip(&labels) {
            shards[bin_of_component[label as usize] as usize]
                .add_fact(fact.clone())
                .expect("shard schema is a clone of the parent schema");
        }
        // Drop bins that received no component (more bins than needed).
        shards.retain(|s| !s.is_empty());
        if shards.is_empty() {
            shards.push(self.derived_empty());
        }
        Some(shards)
    }

    /// Renders a fact for display.
    pub fn display_fact(&self, fact: &Fact) -> String {
        let args: Vec<String> = fact.args.iter().map(|&v| self.display_value(v)).collect();
        format!("{}({})", self.schema.name(fact.rel), args.join(","))
    }

    // ------------------------------------------------------------------
    // Named-row export/import (process-portable shard serialisation).
    // ------------------------------------------------------------------

    /// Exports every fact as `(relation name, constant names)` rows — the
    /// process-portable form of a database: names are stable across
    /// interners, while [`ConstId`]s and [`RelId`]s are not.  The cluster
    /// coordinator ships shards this way and workers rebuild them with
    /// [`Database::from_fact_rows`]; `export ∘ import` preserves the fact
    /// *set* exactly (order included).
    ///
    /// Fails with [`DataError::UnexportableNull`] if a fact mentions a
    /// labelled null: nulls have no name, and base databases — the only
    /// thing worth shipping — never contain them (nulls are minted by the
    /// chase, which runs downstream of export).
    pub fn export_fact_rows(&self) -> Result<Vec<(String, Vec<String>)>> {
        self.facts
            .iter()
            .map(|fact| {
                let args = fact
                    .args
                    .iter()
                    .map(|&v| match v {
                        Value::Const(c) => Ok(self.const_name(c).to_owned()),
                        Value::Null(_) => Err(DataError::UnexportableNull {
                            relation: self.schema.name(fact.rel).to_owned(),
                        }),
                    })
                    .collect::<Result<Vec<String>>>()?;
                Ok((self.schema.name(fact.rel).to_owned(), args))
            })
            .collect()
    }

    /// Rebuilds a database from named rows (the inverse of
    /// [`Database::export_fact_rows`]) over `schema`.  Constants are
    /// interned in row order, so two processes importing the same rows
    /// agree on every constant *name* — which is all the wire carries —
    /// even though their numeric [`ConstId`]s need not match a third
    /// process's.
    pub fn from_fact_rows<S: AsRef<str>>(
        schema: Schema,
        rows: &[(String, Vec<S>)],
    ) -> Result<Database> {
        let mut db = Database::new(schema);
        for (relation, args) in rows {
            db.add_named_fact(relation, args)?;
        }
        Ok(db)
    }
}

/// The identity conversion, so that APIs taking `impl AsRef<Database>` (plan
/// execution, serving) accept `&Database` and store snapshots uniformly.
impl AsRef<Database> for Database {
    fn as_ref(&self) -> &Database {
        self
    }
}

/// Fluent builder for [`Database`], collecting the first error and reporting
/// it at [`DatabaseBuilder::build`] time.
#[derive(Debug)]
pub struct DatabaseBuilder {
    db: Database,
    error: Option<DataError>,
}

impl DatabaseBuilder {
    /// Adds a fact given by relation name and constant names.
    pub fn fact<S: AsRef<str>>(mut self, relation: &str, args: impl AsRef<[S]>) -> Self {
        if self.error.is_none() {
            if let Err(e) = self.db.add_named_fact(relation, args.as_ref()) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Finishes building, returning the database or the first error.
    pub fn build(self) -> Result<Database> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office_schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s.add_relation("InBuilding", 2).unwrap();
        s
    }

    fn office_db() -> Database {
        Database::builder(office_schema())
            .fact("Researcher", ["mary"])
            .fact("Researcher", ["john"])
            .fact("Researcher", ["mike"])
            .fact("HasOffice", ["mary", "room1"])
            .fact("HasOffice", ["john", "room4"])
            .fact("InBuilding", ["room1", "main1"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_basic_queries() {
        let db = office_db();
        assert_eq!(db.len(), 6);
        assert!(db.size() > db.len());
        let has_office = db.schema().relation_id("HasOffice").unwrap();
        assert_eq!(db.facts_of(has_office).len(), 2);
        let mary = Value::Const(db.const_id("mary").unwrap());
        assert_eq!(db.facts_with(has_office, 0, mary).len(), 1);
        assert_eq!(db.facts_mentioning(mary).len(), 2);
        assert!(!db.has_nulls());
    }

    #[test]
    fn duplicate_facts_are_ignored() {
        let mut db = office_db();
        let before = db.len();
        let added = db.add_named_fact("Researcher", &["mary"]).unwrap();
        assert!(!added);
        assert_eq!(db.len(), before);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut db = office_db();
        let err = db.add_named_fact("Researcher", &["a", "b"]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_is_error() {
        let err = Database::builder(office_schema())
            .fact("Nope", ["x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownRelation(_)));
    }

    #[test]
    fn adom_and_guarded_sets() {
        let db = office_db();
        // mary, john, mike, room1, room4, main1
        assert_eq!(db.adom().len(), 6);
        let mary = Value::Const(db.const_id("mary").unwrap());
        let room1 = Value::Const(db.const_id("room1").unwrap());
        let main1 = Value::Const(db.const_id("main1").unwrap());
        assert!(db.is_guarded_set(&[mary, room1]));
        assert!(db.is_guarded_set(&[room1]));
        assert!(db.is_guarded_set(&[]));
        assert!(!db.is_guarded_set(&[mary, main1]));
    }

    #[test]
    fn facts_matching_partial_binding() {
        let db = office_db();
        let has_office = db.schema().relation_id("HasOffice").unwrap();
        let john = Value::Const(db.const_id("john").unwrap());
        let matches = db.facts_matching(has_office, &[Some(john), None]);
        assert_eq!(matches.len(), 1);
        let all = db.facts_matching(has_office, &[None, None]);
        assert_eq!(all.len(), 2);
        let none = db.facts_matching(
            has_office,
            &[
                Some(john),
                Some(Value::Const(db.const_id("room1").unwrap())),
            ],
        );
        assert!(none.is_empty());
    }

    #[test]
    fn restrict_to_subset() {
        let db = office_db();
        let mary = Value::Const(db.const_id("mary").unwrap());
        let room1 = Value::Const(db.const_id("room1").unwrap());
        let keep: FxHashSet<Value> = [mary, room1].into_iter().collect();
        let restricted = db.restrict_to(&keep);
        assert_eq!(restricted.len(), 2); // Researcher(mary), HasOffice(mary,room1)
    }

    #[test]
    fn fresh_nulls_are_distinct_and_reserved() {
        let mut db = office_db();
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        assert_ne!(n1, n2);
        let rel = db.schema().relation_id("Researcher").unwrap();
        db.add_fact(Fact::new(rel, vec![Value::Null(NullId(100))]))
            .unwrap();
        let n3 = db.fresh_null();
        assert!(n3.0 > 100);
        assert!(db.has_nulls());
        // Only NullId(100) was inserted into a fact; fresh_null() alone does not
        // extend the active domain.
        assert_eq!(db.adom_nulls().len(), 1);
    }

    #[test]
    fn absorb_merges_by_name() {
        let mut s2 = Schema::new();
        s2.add_relation("Extra", 1).unwrap();
        s2.add_relation("Researcher", 1).unwrap();
        let mut other = Database::new(s2);
        other.add_named_fact("Extra", &["zoe"]).unwrap();
        other.add_named_fact("Researcher", &["zoe"]).unwrap();

        let mut db = office_db();
        db.absorb(&other).unwrap();
        assert!(db.schema().relation_id("Extra").is_some());
        let zoe = db.const_id("zoe").unwrap();
        let researcher = db.schema().relation_id("Researcher").unwrap();
        assert!(db.contains_fact(&Fact::new(researcher, vec![Value::Const(zoe)])));
        assert_eq!(db.len(), 8);
    }

    #[test]
    fn derived_empty_shares_constants() {
        let db = office_db();
        let derived = db.derived_empty();
        assert!(derived.is_empty());
        assert_eq!(derived.const_id("mary"), db.const_id("mary"));
    }

    #[test]
    fn display_helpers() {
        let db = office_db();
        let has_office = db.schema().relation_id("HasOffice").unwrap();
        let f = &db.facts()[db.facts_of(has_office)[0]];
        assert_eq!(db.display_fact(f), "HasOffice(mary,room1)");
    }

    #[test]
    fn value_codes_are_dense_and_stable() {
        let db = office_db();
        for (expected, &v) in db.adom().iter().enumerate() {
            assert_eq!(db.value_code(v), Some(expected as u32));
        }
        assert_eq!(db.value_code(Value::Const(ConstId(9999))), None);
        assert_eq!(db.value_code(Value::Null(NullId(0))), None);
    }

    /// Regression test for the `P_db` relativisation path: relations declared
    /// *after* facts exist (and after the columnar index was built) must be
    /// fully indexed.
    #[test]
    fn add_relation_after_facts_keeps_indexes_consistent() {
        let mut db = office_db();
        let mary = Value::Const(db.const_id("mary").unwrap());
        // Force the columnar index to be built with the original schema.
        assert_eq!(db.facts_mentioning(mary).len(), 2);
        // Declare the relativisation predicate afterwards and populate it.
        let p_db = db.add_relation("P_db", 1).unwrap();
        assert_eq!(db.by_relation.len(), db.schema().len());
        for value in ["mary", "john", "mike"] {
            db.add_named_fact("P_db", &[value]).unwrap();
        }
        assert_eq!(db.facts_of(p_db).len(), 3);
        assert_eq!(db.facts_with(p_db, 0, mary).len(), 1);
        // The new facts also show up in the mention index.
        assert_eq!(db.facts_mentioning(mary).len(), 3);
        // Declaring a relation and never adding facts is also consistent.
        let empty = db.add_relation("Q_db", 2).unwrap();
        assert!(db.facts_of(empty).is_empty());
        assert!(db.facts_with(empty, 0, mary).is_empty());
        // Re-declaring an existing relation (same arity) is a true no-op:
        // the revision stands and the built index is not discarded.
        let _ = db.columnar(); // force the index
        let revision = db.revision();
        assert_eq!(db.add_relation("Q_db", 2).unwrap(), empty);
        assert_eq!(db.revision(), revision);
        assert!(db.columnar.get().is_some(), "index survived the no-op");
    }

    #[test]
    fn shard_by_component_partitions_facts() {
        let db = office_db();
        // Components: {mary, room1, main1}, {john, room4}, {mike}.
        assert_eq!(db.component_count(), 3);
        let shards = db.shard_by_component();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(Database::len).sum::<usize>(), db.len());
        for shard in &shards {
            assert!(shard.shares_interner_with(&db));
            assert_eq!(shard.schema().len(), db.schema().len());
            for fact in shard.facts() {
                assert!(db.contains_fact(fact));
            }
        }
        // No value occurs in two shards.
        for (i, a) in shards.iter().enumerate() {
            for b in &shards[i + 1..] {
                for v in a.adom() {
                    assert!(!b.in_adom(*v), "value {v:?} spans shards");
                }
            }
        }
        // Every shard resolves every constant name (shared snapshot).
        assert!(shards.iter().all(|s| s.const_id("mike").is_some()));
    }

    #[test]
    fn shard_into_respects_bounds_and_balances() {
        let db = office_db();
        assert_eq!(db.shard_into(1).len(), 1);
        assert_eq!(db.shard_into(0).len(), 1); // clamped to one bin
        let two = db.shard_into(2);
        assert_eq!(two.len(), 2);
        assert_eq!(two.iter().map(Database::len).sum::<usize>(), db.len());
        // More bins than components collapses to one shard per component.
        assert_eq!(db.shard_into(64).len(), 3);
        // The empty database still yields one (empty) shard.
        let empty = Database::new(office_schema());
        assert_eq!(empty.shard_by_component().len(), 1);
        assert_eq!(empty.component_count(), 0);
    }

    #[test]
    fn nullary_facts_form_one_pseudo_component() {
        let mut db = office_db();
        db.add_relation("Flag", 0).unwrap();
        db.add_fact(Fact::new(db.schema().relation_id("Flag").unwrap(), vec![]))
            .unwrap();
        assert_eq!(db.component_count(), 4);
        let shards = db.shard_by_component();
        assert_eq!(shards.iter().map(Database::len).sum::<usize>(), db.len());
    }

    #[test]
    fn component_roots_and_keyed_shards_track_inserts() {
        let mut db = office_db();
        let mary = Value::Const(db.const_id("mary").unwrap());
        let room1 = Value::Const(db.const_id("room1").unwrap());
        let mike = Value::Const(db.const_id("mike").unwrap());
        assert_eq!(db.component_root(mary), db.component_root(room1));
        assert_ne!(db.component_root(mary), db.component_root(mike));
        // Keyed shards partition the facts and agree with the roots.
        let keyed = db.shard_by_component_keyed();
        assert_eq!(keyed.len(), 3);
        assert_eq!(keyed.iter().map(|(_, s)| s.len()).sum::<usize>(), db.len());
        for (key, shard) in &keyed {
            let root = key.expect("no nullary facts in the office db");
            assert!(shard.shares_interner_with(&db));
            for fact in shard.facts() {
                assert_eq!(db.component_root(fact.args[0]), Some(root));
            }
        }
        // Extracting a component yields exactly its facts, insertion order.
        let root = db.component_root(mary).unwrap();
        assert_eq!(db.component_fact_indices(root), vec![0, 3, 5]);
        assert_eq!(db.component_database(root).len(), 3);
        // A bridging fact merges two components: both old roots
        // re-canonicalise to the one survivor, which owns all the facts.
        let old_mary = root;
        let old_mike = db.component_root(mike).unwrap();
        db.add_named_fact("HasOffice", &["mike", "room1"]).unwrap();
        let merged = db.component_root(mary).unwrap();
        assert_eq!(db.component_root(mike), Some(merged));
        assert_eq!(db.component_root_of_code(old_mary), Some(merged));
        assert_eq!(db.component_root_of_code(old_mike), Some(merged));
        assert_eq!(db.component_count(), 2);
        assert_eq!(db.component_database(merged).len(), 5);
        assert_eq!(db.component_root_of_code(u32::MAX - 1), None);
    }

    #[test]
    fn keyed_shards_put_the_nullary_pseudo_component_last() {
        let mut db = office_db();
        db.add_relation("Flag", 0).unwrap();
        db.add_fact(Fact::new(db.schema().relation_id("Flag").unwrap(), vec![]))
            .unwrap();
        assert_eq!(db.nullary_fact_indices(), &[6]);
        assert_eq!(db.nullary_database().len(), 1);
        let keyed = db.shard_by_component_keyed();
        assert_eq!(keyed.len(), 4);
        assert_eq!(keyed.last().unwrap().0, None);
        assert_eq!(keyed.iter().map(|(_, s)| s.len()).sum::<usize>(), db.len());
    }

    #[test]
    fn stale_columnar_index_is_a_typed_error() {
        let mut db = office_db();
        let detached = db.columnar().clone();
        assert!(detached.verify_against(&db).is_ok());
        assert!(db.verify_columnar().is_ok());
        db.add_named_fact("Researcher", &["zoe"]).unwrap();
        let err = detached.verify_against(&db).unwrap_err();
        assert!(matches!(err, DataError::StaleIndex { .. }));
        assert!(err.to_string().contains("stale columnar index"));
        // The owning database never serves a stale index: the mutation
        // dropped it, so the typed check passes before and after a rebuild.
        assert!(db.columnar_if_built().is_none());
        assert!(db.verify_columnar().is_ok());
        let _ = db.columnar();
        assert!(db.columnar_if_built().is_some());
        assert!(db.verify_columnar().is_ok());
    }

    #[test]
    fn interner_snapshot_is_copy_on_write() {
        let db = office_db();
        let mut clone = db.clone();
        assert!(clone.shares_interner_with(&db));
        // Re-interning an existing constant keeps the shared snapshot.
        let mary = clone.intern_const("mary");
        assert_eq!(Some(mary), db.const_id("mary"));
        assert!(clone.shares_interner_with(&db));
        // A genuinely new constant copies the snapshot; the parent's ids are
        // unchanged and still coherent with the clone's.
        clone.intern_const("zoe");
        assert!(!clone.shares_interner_with(&db));
        assert_eq!(db.const_id("zoe"), None);
        assert_eq!(clone.const_id("mary"), db.const_id("mary"));
    }

    #[test]
    fn lookups_reflect_mutations_interleaved_with_reads() {
        let mut db = office_db();
        let researcher = db.schema().relation_id("Researcher").unwrap();
        let mary = Value::Const(db.const_id("mary").unwrap());
        assert_eq!(db.facts_with(researcher, 0, mary).len(), 1);
        db.add_named_fact("Researcher", &["zoe"]).unwrap();
        let zoe = Value::Const(db.const_id("zoe").unwrap());
        assert_eq!(db.facts_with(researcher, 0, zoe).len(), 1);
        assert_eq!(db.facts_of(researcher).len(), 4);
    }

    #[test]
    fn named_rows_round_trip_and_shards_stay_portable() {
        let db = office_db();
        let rows = db.export_fact_rows().unwrap();
        assert_eq!(rows.len(), db.len());
        assert_eq!(rows[3].0, "HasOffice");
        assert_eq!(rows[3].1, vec!["mary".to_owned(), "room1".to_owned()]);
        let rebuilt = Database::from_fact_rows(db.schema().clone(), &rows).unwrap();
        assert_eq!(rebuilt.len(), db.len());
        for (fact, other) in db.facts().iter().zip(rebuilt.facts()) {
            assert_eq!(db.display_fact(fact), rebuilt.display_fact(other));
        }
        // Component shards export/import independently: the re-imported
        // shard renders the same facts even though its interner is fresh.
        for shard in db.shard_by_component() {
            let rows = shard.export_fact_rows().unwrap();
            let rebuilt = Database::from_fact_rows(shard.schema().clone(), &rows).unwrap();
            let render = |d: &Database| -> Vec<String> {
                d.facts().iter().map(|f| d.display_fact(f)).collect()
            };
            assert_eq!(render(&shard), render(&rebuilt));
        }
    }

    #[test]
    fn null_bearing_facts_refuse_to_export() {
        let mut db = office_db();
        let null = db.fresh_null();
        let researcher = db.schema().relation_id("Researcher").unwrap();
        db.add_fact(Fact::new(researcher, vec![Value::Null(null)]))
            .unwrap();
        assert!(matches!(
            db.export_fact_rows(),
            Err(DataError::UnexportableNull { relation }) if relation == "Researcher"
        ));
    }
}
