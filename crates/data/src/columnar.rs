//! Dense columnar indexes: the hash-free lookup layer of [`Database`].
//!
//! The paper's `DelayC_lin` bounds assume RAM-model constant-time lookups.
//! Earlier versions of this crate realised them with
//! `FxHashMap<(RelId, u32, Value), Vec<usize>>`, which costs a hash and a
//! pointer chase per probe and a small allocation per key.  The
//! [`ColumnarIndex`] replaces those maps with dense CSR (compressed sparse
//! row) arrays, built in one linear pass over the fact table:
//!
//! * every active-domain value carries a dense **value code** (its index in
//!   `adom(D)`, maintained incrementally by the database);
//! * for every `(relation, position)` pair there is a [`Column`]: a remap
//!   from value codes to contiguous **column-local ids** plus a CSR layout
//!   `offsets`/`facts` grouping the fact indices by column-local id;
//! * one global mention CSR groups fact indices by value code (any position),
//!   replacing the old by-value hash index.
//!
//! # Invariants
//!
//! 1. The index is a pure function of the fact table: it is (re)built from
//!    scratch by a linear pass and never mutated incrementally.  The owning
//!    [`Database`] invalidates it on every mutation (`add_fact`,
//!    `add_relation`, `absorb`) and rebuilds lazily on the next lookup, so a
//!    lookup can never observe a stale index.
//! 2. `columns[r][p].offsets` has `distinct + 1` entries where `distinct` is
//!    the number of distinct values in column `(r, p)`; the fact ids in
//!    `facts[offsets[l]..offsets[l + 1]]` are exactly the facts whose
//!    argument at position `p` has column-local id `l`, in insertion order.
//! 3. `local_of_code[code]` is `NONE` iff the value with that code never
//!    occurs in the column; otherwise it is a valid local id `< distinct`.
//! 4. The mention CSR satisfies the same layout keyed by global value code,
//!    with each fact listed **once** per mentioned value (duplicated
//!    positions collapse), in insertion order.
//! 5. All lookups after the build are array indexing — no hashing.
//!
//! [`Database`]: crate::database::Database

use crate::database::Database;
use crate::schema::RelId;
use crate::value::Value;

/// Sentinel for "value does not occur in this column".
const NONE: u32 = u32::MAX;

/// The per-`(relation, position)` CSR column of a [`ColumnarIndex`].
#[derive(Debug, Clone, Default)]
pub struct Column {
    /// Global value code → column-local id (`NONE` if absent).
    local_of_code: Vec<u32>,
    /// Column-local id → the value it encodes (dense, in first-seen order).
    values: Vec<Value>,
    /// CSR offsets over [`Column::facts`], one entry per local id plus one.
    offsets: Vec<u32>,
    /// Fact indices grouped by column-local id.
    facts: Vec<usize>,
}

impl Column {
    /// Number of distinct values occurring in the column.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// The column-local id of a global value code, if the value occurs here.
    #[inline]
    pub fn local_of_code(&self, code: u32) -> Option<u32> {
        match self.local_of_code.get(code as usize) {
            Some(&l) if l != NONE => Some(l),
            _ => None,
        }
    }

    /// The value encoded by a column-local id.
    pub fn value_of_local(&self, local: u32) -> Value {
        self.values[local as usize]
    }

    /// The fact indices whose argument in this column has local id `local`.
    #[inline]
    pub fn facts_of_local(&self, local: u32) -> &[usize] {
        let lo = self.offsets[local as usize] as usize;
        let hi = self.offsets[local as usize + 1] as usize;
        &self.facts[lo..hi]
    }

    /// The fact indices whose argument in this column has value code `code`
    /// (empty if the value does not occur in the column).
    #[inline]
    pub fn facts_of_code(&self, code: u32) -> &[usize] {
        match self.local_of_code(code) {
            Some(local) => self.facts_of_local(local),
            None => &[],
        }
    }

    /// Iterates over `(value, facts)` groups in first-seen order.
    pub fn groups(&self) -> impl Iterator<Item = (Value, &[usize])> {
        (0..self.values.len() as u32).map(|l| (self.value_of_local(l), self.facts_of_local(l)))
    }
}

/// Structure-of-arrays argument storage of one relation: all arguments at
/// position `p` of the relation's facts stored contiguously, in
/// [`Database::facts_of`] order.  Dense scans (extension building, parent
/// joins) walk one cache-friendly column per inspected position instead of
/// chasing one heap-allocated `Fact::args` vector per row.
#[derive(Debug, Clone, Default)]
pub struct RelColumns {
    /// Number of facts of the relation — the row count of every column.
    rows: usize,
    /// Column-major values: position `p` occupies
    /// `values[p * rows..(p + 1) * rows]`.
    values: Vec<Value>,
}

impl RelColumns {
    /// Number of facts of the relation (rows of each column).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The contiguous argument column at `pos`: entry `k` is the argument at
    /// `pos` of the `k`-th fact of the relation, in [`Database::facts_of`]
    /// order.
    #[inline]
    pub fn column(&self, pos: usize) -> &[Value] {
        &self.values[pos * self.rows..(pos + 1) * self.rows]
    }
}

/// The dense columnar index of a [`Database`]; see the module docs for the
/// layout and its invariants.
#[derive(Debug, Clone, Default)]
pub struct ColumnarIndex {
    /// `columns[rel][pos]`, sized by the schema at build time.
    columns: Vec<Vec<Column>>,
    /// Structure-of-arrays argument storage, one [`RelColumns`] per relation.
    arg_columns: Vec<RelColumns>,
    /// Global fact index → its row within its relation's [`RelColumns`]
    /// (i.e. its position in [`Database::facts_of`]).
    row_of_fact: Vec<u32>,
    /// Mention CSR: value code → fact indices mentioning the value.
    mention_offsets: Vec<u32>,
    mention_facts: Vec<usize>,
    /// The owning database's [`Database::revision`] at build time.  Because
    /// the database drops the index on every mutation, an index that is
    /// reachable always carries the current revision — the tag makes the
    /// invariant checkable (and lets copy-on-write snapshots assert that a
    /// shared index belongs to the data it serves).
    revision: u64,
}

impl ColumnarIndex {
    /// Builds the index in one linear pass over the fact table of `db`.
    pub(crate) fn build(db: &Database) -> ColumnarIndex {
        let adom_len = db.adom().len();
        let schema = db.schema();
        let mut columns: Vec<Vec<Column>> = Vec::with_capacity(schema.len());
        for (rel, relation) in schema.iter() {
            let mut per_pos: Vec<Column> = Vec::with_capacity(relation.arity);
            for pos in 0..relation.arity {
                per_pos.push(Self::build_column(db, rel, pos, adom_len));
            }
            columns.push(per_pos);
        }

        // SoA argument columns: one column-major block per relation, rows in
        // `facts_of` order, plus the global fact → row remap.
        let mut arg_columns: Vec<RelColumns> = Vec::with_capacity(schema.len());
        let mut row_of_fact = vec![0u32; db.len()];
        for (rel, relation) in schema.iter() {
            let fact_ids = db.facts_of(rel);
            let rows = fact_ids.len();
            let mut values = vec![Value::Null(crate::value::NullId(0)); rows * relation.arity];
            for (row, &idx) in fact_ids.iter().enumerate() {
                row_of_fact[idx] = row as u32;
                for (pos, &v) in db.fact(idx).args.iter().enumerate() {
                    values[pos * rows + row] = v;
                }
            }
            arg_columns.push(RelColumns { rows, values });
        }

        // Mention CSR over global value codes: count, prefix-sum, fill.
        let mut counts = vec![0u32; adom_len];
        for fact in db.facts() {
            for value in fact.distinct_values() {
                let code = db.value_code(value).expect("adom value has a code");
                counts[code as usize] += 1;
            }
        }
        let mut mention_offsets = Vec::with_capacity(adom_len + 1);
        let mut total = 0u32;
        mention_offsets.push(0);
        for &c in &counts {
            total += c;
            mention_offsets.push(total);
        }
        let mut cursor: Vec<u32> = mention_offsets[..adom_len].to_vec();
        let mut mention_facts = vec![0usize; total as usize];
        for (idx, fact) in db.facts().iter().enumerate() {
            for value in fact.distinct_values() {
                let code = db.value_code(value).expect("adom value has a code") as usize;
                mention_facts[cursor[code] as usize] = idx;
                cursor[code] += 1;
            }
        }

        ColumnarIndex {
            columns,
            arg_columns,
            row_of_fact,
            mention_offsets,
            mention_facts,
            revision: db.revision(),
        }
    }

    fn build_column(db: &Database, rel: RelId, pos: usize, adom_len: usize) -> Column {
        let mut local_of_code = vec![NONE; adom_len];
        let mut values: Vec<Value> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for &idx in db.facts_of(rel) {
            let value = db.fact(idx).args[pos];
            let code = db.value_code(value).expect("adom value has a code") as usize;
            let local = if local_of_code[code] == NONE {
                let l = values.len() as u32;
                local_of_code[code] = l;
                values.push(value);
                counts.push(0);
                l
            } else {
                local_of_code[code]
            };
            counts[local as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(values.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..values.len()].to_vec();
        let mut facts = vec![0usize; total as usize];
        for &idx in db.facts_of(rel) {
            let value = db.fact(idx).args[pos];
            let code = db.value_code(value).expect("adom value has a code") as usize;
            let local = local_of_code[code] as usize;
            facts[cursor[local] as usize] = idx;
            cursor[local] += 1;
        }
        Column {
            local_of_code,
            values,
            offsets,
            facts,
        }
    }

    /// The column of `(rel, pos)` (empty column if out of range).
    pub fn column(&self, rel: RelId, pos: usize) -> Option<&Column> {
        self.columns.get(rel.0 as usize).and_then(|c| c.get(pos))
    }

    /// The structure-of-arrays argument columns of `rel`, or `None` if the
    /// relation is out of range for this index.
    #[inline]
    pub fn rel_columns(&self, rel: RelId) -> Option<&RelColumns> {
        self.arg_columns.get(rel.0 as usize)
    }

    /// The row of a global fact index within its relation's [`RelColumns`]
    /// (its position in [`Database::facts_of`]).
    #[inline]
    pub fn row_of_fact(&self, idx: usize) -> u32 {
        self.row_of_fact[idx]
    }

    /// Fact indices of `rel` whose argument at `pos` has value code `code`.
    #[inline]
    pub fn facts_with_code(&self, rel: RelId, pos: usize, code: u32) -> &[usize] {
        match self.column(rel, pos) {
            Some(column) => column.facts_of_code(code),
            None => &[],
        }
    }

    /// Fact indices mentioning the value with code `code` in any position.
    #[inline]
    pub fn facts_mentioning_code(&self, code: u32) -> &[usize] {
        let Some(&hi) = self.mention_offsets.get(code as usize + 1) else {
            return &[];
        };
        let lo = self.mention_offsets[code as usize];
        &self.mention_facts[lo as usize..hi as usize]
    }

    /// Number of relation symbols covered by the index.
    pub fn relation_count(&self) -> usize {
        self.columns.len()
    }

    /// The [`Database::revision`] this index was built at (invariant 1: equal
    /// to the owning database's current revision whenever the index is
    /// reachable).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Checks that this index is current for `db`, i.e. that it was built at
    /// `db`'s present revision.
    ///
    /// The owning database upholds invariant 1 by dropping its index on every
    /// mutation, so an index reached through [`Database::columnar`] is always
    /// current.  A *detached* index — a clone held across a mutation, or an
    /// index belonging to a shard that was refreshed underneath it — can go
    /// stale; executors that reuse shard indexes across epochs call this
    /// before trusting the index and surface [`DataError::StaleIndex`]
    /// instead of a debug assertion.
    ///
    /// [`DataError::StaleIndex`]: crate::DataError::StaleIndex
    pub fn verify_against(&self, db: &Database) -> crate::Result<()> {
        if self.revision == db.revision() {
            Ok(())
        } else {
            Err(crate::DataError::StaleIndex {
                index_revision: self.revision,
                database_revision: db.revision(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        s.add_relation("A", 1).unwrap();
        Database::builder(s)
            .fact("R", ["a", "b"])
            .fact("R", ["a", "c"])
            .fact("R", ["b", "b"])
            .fact("A", ["a"])
            .build()
            .unwrap()
    }

    #[test]
    fn csr_groups_match_hash_semantics() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let a = Value::Const(db.const_id("a").unwrap());
        let b = Value::Const(db.const_id("b").unwrap());
        assert_eq!(db.facts_with(r, 0, a), &[0, 1]);
        assert_eq!(db.facts_with(r, 0, b), &[2]);
        assert_eq!(db.facts_with(r, 1, b), &[0, 2]);
        assert_eq!(db.facts_with(r, 1, a), &[] as &[usize]);
        assert_eq!(db.facts_mentioning(a), &[0, 1, 3]);
        // A fact with a repeated value is mentioned once.
        assert_eq!(db.facts_mentioning(b), &[0, 2]);
    }

    #[test]
    fn column_accessors_and_invariants() {
        let db = db();
        let r = db.schema().relation_id("R").unwrap();
        let index = db.columnar();
        let col0 = index.column(r, 0).unwrap();
        assert_eq!(col0.distinct(), 2); // a, b
        let total: usize = col0.groups().map(|(_, facts)| facts.len()).sum();
        assert_eq!(total, 3);
        // Every local id round-trips through its value's code.
        for local in 0..col0.distinct() as u32 {
            let value = col0.value_of_local(local);
            let code = db.value_code(value).unwrap();
            assert_eq!(col0.local_of_code(code), Some(local));
        }
        // Out-of-range lookups are empty, not panics — including the exact
        // boundary code (== adom size), whose offset slot exists but whose
        // successor slot does not.
        assert!(index.facts_with_code(RelId(99), 0, 0).is_empty());
        let adom_len = db.adom().len() as u32;
        assert!(index.facts_mentioning_code(adom_len).is_empty());
        assert!(index.facts_mentioning_code(adom_len + 1).is_empty());
        assert!(index.facts_mentioning_code(u32::MAX - 1).is_empty());
    }

    #[test]
    fn soa_columns_mirror_fact_arguments() {
        let db = db();
        let index = db.columnar();
        for (rel, relation) in db.schema().iter() {
            let cols = index.rel_columns(rel).unwrap();
            assert_eq!(cols.rows(), db.facts_of(rel).len());
            for pos in 0..relation.arity {
                let column = cols.column(pos);
                for (row, &idx) in db.facts_of(rel).iter().enumerate() {
                    assert_eq!(column[row], db.fact(idx).args[pos]);
                    assert_eq!(index.row_of_fact(idx) as usize, row);
                }
            }
        }
        assert!(index.rel_columns(RelId(99)).is_none());
    }

    #[test]
    fn rebuild_after_mutation_is_consistent() {
        let mut db = db();
        let r = db.schema().relation_id("R").unwrap();
        let a = Value::Const(db.const_id("a").unwrap());
        assert_eq!(db.facts_with(r, 0, a).len(), 2); // builds the index
        let built_at = db.columnar().revision();
        assert_eq!(built_at, db.revision());
        db.add_named_fact("R", &["a", "z"]).unwrap(); // invalidates it
        assert_eq!(db.facts_with(r, 0, a).len(), 3); // rebuilt lazily
        let z = Value::Const(db.const_id("z").unwrap());
        assert_eq!(db.facts_mentioning(z).len(), 1);
        // The rebuilt index carries the post-mutation revision tag.
        assert!(db.columnar().revision() > built_at);
        assert_eq!(db.columnar().revision(), db.revision());
    }
}
