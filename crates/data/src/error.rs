//! Error type for the data-model substrate.

use std::fmt;

/// Errors raised while constructing or manipulating schemas and databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation symbol was used that is not part of the schema.
    UnknownRelation(String),
    /// A fact was constructed with the wrong number of arguments for its
    /// relation symbol.
    ArityMismatch {
        /// Relation symbol name.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// The same relation symbol was declared twice with different arities.
    ConflictingArity {
        /// Relation symbol name.
        relation: String,
        /// First declared arity.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// A tuple of the wrong length was supplied to an operation that expects a
    /// specific length (e.g. answer testing).
    TupleLengthMismatch {
        /// Expected length.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// A multi-wildcard tuple violated the canonical numbering condition
    /// (a wildcard `*_j` with `j > 1` must be preceded by `*_{j-1}`).
    NonCanonicalWildcards,
    /// A fact mentioning a labelled null was exported as named rows.  Rows
    /// travel by constant *name* (e.g. between cluster processes), and a
    /// null has none; base databases — the only thing shipped — never
    /// contain nulls (nulls are minted by the chase, downstream of export).
    UnexportableNull {
        /// The relation of the offending fact.
        relation: String,
    },
    /// A [`crate::ColumnarIndex`] was executed against a database whose
    /// revision differs from the one the index was built at (e.g. a cloned
    /// index outliving a mutation, or a reused shard that was refreshed
    /// underneath it).
    StaleIndex {
        /// The revision the index was built at.
        index_revision: u64,
        /// The current revision of the database it was checked against.
        database_revision: u64,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownRelation(name) => {
                write!(f, "unknown relation symbol `{name}`")
            }
            DataError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {actual} arguments were supplied"
            ),
            DataError::ConflictingArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation `{relation}` declared with conflicting arities {first} and {second}"
            ),
            DataError::TupleLengthMismatch { expected, actual } => write!(
                f,
                "tuple length mismatch: expected {expected}, got {actual}"
            ),
            DataError::NonCanonicalWildcards => {
                write!(
                    f,
                    "multi-wildcard tuple does not use canonical wildcard numbering"
                )
            }
            DataError::UnexportableNull { relation } => write!(
                f,
                "a fact of relation `{relation}` mentions a labelled null \
                 and cannot be exported as named rows"
            ),
            DataError::StaleIndex {
                index_revision,
                database_revision,
            } => write!(
                f,
                "stale columnar index: built at revision {index_revision}, \
                 database is at revision {database_revision}"
            ),
        }
    }
}

impl std::error::Error for DataError {}
