//! Relational data-model substrate for the OMQ enumeration library.
//!
//! This crate provides the "databases" half of the formal setup of
//! *Efficiently Enumerating Answers to Ontology-Mediated Queries*
//! (Lutz & Przybyłko, PODS 2022):
//!
//! * interned **constants** (the countably infinite set `C` of the paper) and
//!   **nulls** (the set `N`), see [`Value`];
//! * **schemas** of relation symbols with arities, see [`Schema`];
//! * **facts** and finite **instances / databases** with dense columnar
//!   indexes that play the role of the RAM-model lookup tables assumed by the
//!   paper, see [`Database`] and [`columnar::ColumnarIndex`];
//! * chunked, auto-vectorizable **scan kernels** over those columnar layouts
//!   (membership tests, join-partner counting, CSR fan-out sums), see
//!   [`kernels`];
//! * the **Gaifman graph** of a database and guarded sets, see [`gaifman`];
//! * **wildcard tuples** for partial answers — both the single-wildcard variant
//!   (`*`) and the multi-wildcard variant (`*1, *2, …`) together with their
//!   preference orders `⪯` / `≺`, minimality filters, balls and cones, see
//!   [`wildcard`];
//! * the **unified answer value** ([`Answer`]) and semantics selector
//!   ([`Semantics`]) shared by the enumeration cursors upstream, see
//!   [`answer`];
//! * the long-lived **fact store** with transactional batch ingestion and
//!   copy-on-write, epoch-tagged snapshots ([`Store`] / [`Txn`] /
//!   [`Snapshot`]) — the session substrate of the serving layer, see
//!   [`store`].
//!
//! Everything downstream (conjunctive queries, the chase, the enumeration
//! engines) is built on top of these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod columnar;
pub mod database;
pub mod error;
pub mod fact;
pub mod gaifman;
pub mod interner;
pub mod kernels;
pub mod schema;
pub mod store;
pub mod value;
pub mod wildcard;

pub use answer::{Answer, Semantics};
pub use columnar::{Column, ColumnarIndex};
pub use database::{Database, DatabaseBuilder};
pub use error::DataError;
pub use fact::Fact;
pub use interner::Interner;
pub use schema::{RelId, Relation, Schema};
pub use store::{CommitReceipt, Snapshot, Store, Txn};
pub use value::{ConstId, NullId, Value};
pub use wildcard::{
    multi_wildcard_ball, multi_wildcard_cone, MultiTuple, MultiValue, PartialTuple, PartialValue,
};

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, DataError>;
