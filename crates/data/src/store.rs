//! The long-lived, snapshot-isolated fact store: [`Store`], [`Txn`],
//! [`Snapshot`].
//!
//! The paper's pipeline is *compile once* (a query plan), *preprocess per
//! database*, *enumerate with constant delay*.  A serving deployment runs
//! that pipeline against data that changes over time, so the data side needs
//! a long-lived owner rather than a hand-built immutable [`Database`]:
//!
//! * [`Store`] owns the current database behind an `Arc` (the *head*) plus a
//!   monotone **epoch** counter, bumped once per state-changing commit;
//! * [`Txn`] is a detached batch of ingestion operations
//!   ([`Txn::insert`] / [`Txn::insert_all`] / [`Txn::add_relation`]).  A
//!   transaction is validated as a whole before anything is applied
//!   ([`Store::commit`] is commit-or-rollback: on the first invalid
//!   operation the store is untouched), and dropping an uncommitted
//!   transaction ([`Txn::rollback`]) never touches the store at all;
//! * [`Snapshot`] pins the head at one epoch.  Snapshots are **copy-on-write**:
//!   taking one is an `Arc` clone (no fact is copied), and a later commit
//!   pays for the copy via [`Arc::make_mut`] only if a snapshot still pins
//!   the pre-commit head.  A snapshot is `Send + Sync`, derefs to
//!   [`Database`], and — because [`Database`] implements
//!   `AsRef<Database>` alongside it — plugs directly into
//!   `QueryPlan::execute`-style consumers without recomputing any index:
//!   the columnar index and interner inside the shared database are reused
//!   by every snapshot of the same epoch.
//!
//! # Isolation invariants
//!
//! 1. **Snapshot stability** — no operation on a [`Store`] (commit, schema
//!    merge, drop) ever mutates a database reachable through a previously
//!    taken [`Snapshot`]; answer streams opened on a snapshot keep yielding
//!    after arbitrarily many commits and after the store is gone.
//! 2. **Atomicity** — [`Store::commit`] applies all of a transaction's
//!    operations or none: validation runs against a staged schema first, and
//!    application is infallible afterwards.
//! 3. **Epoch monotonicity** — the epoch moves iff the head does: every
//!    successful commit that changes the store bumps it by one, a no-effect
//!    commit (empty or duplicate-only) leaves it — and the head `Arc` —
//!    untouched, and a snapshot's [`Snapshot::epoch`] names the state it
//!    pins.
//!
//! ```
//! use omq_data::{Schema, Semantics, Store, Txn};
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Researcher", 1)?;
//! let mut store = Store::new(schema);
//!
//! let receipt = store.commit(Txn::new().insert("Researcher", ["mary"]))?;
//! assert_eq!(receipt.epoch, 1);
//! let pinned = store.snapshot();
//!
//! // A later commit never changes what `pinned` sees.
//! store.commit(Txn::new().insert("Researcher", ["ada"]))?;
//! assert_eq!(pinned.len(), 1);
//! assert_eq!(store.snapshot().len(), 2);
//! # Ok::<(), omq_data::DataError>(())
//! ```

use crate::database::Database;
use crate::error::DataError;
use crate::schema::Schema;
use crate::Result;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// One staged ingestion operation of a [`Txn`].
#[derive(Debug, Clone)]
enum TxnOp {
    /// Declare a relation symbol (idempotent for matching arities).
    AddRelation { name: String, arity: usize },
    /// Insert one fact given by relation name and constant names.
    Insert { relation: String, args: Vec<String> },
}

/// A detached, buffered batch of ingestion operations.
///
/// A transaction records operations without touching any store; it is only
/// validated and applied — atomically — by [`Store::commit`].  Operations
/// are applied in insertion order, so a relation declared by
/// [`Txn::add_relation`] is visible to later [`Txn::insert`]s of the same
/// transaction.  Dropping an uncommitted transaction (or calling
/// [`Txn::rollback`] to say so explicitly) discards it without any effect on
/// the store.
#[derive(Debug, Clone, Default)]
pub struct Txn {
    ops: Vec<TxnOp>,
}

impl Txn {
    /// Starts an empty transaction.
    pub fn new() -> Self {
        Txn::default()
    }

    /// Stages one fact, given by relation name and constant names.
    ///
    /// Nothing is validated here: unknown relations and arity mismatches are
    /// reported by [`Store::commit`], which rejects the whole transaction.
    pub fn insert<S: AsRef<str>>(mut self, relation: &str, args: impl AsRef<[S]>) -> Self {
        self.ops.push(TxnOp::Insert {
            relation: relation.to_owned(),
            args: args
                .as_ref()
                .iter()
                .map(|a| a.as_ref().to_owned())
                .collect(),
        });
        self
    }

    /// Stages a batch of facts over one relation.
    pub fn insert_all<S: AsRef<str>, R: AsRef<[S]>>(
        mut self,
        relation: &str,
        rows: impl IntoIterator<Item = R>,
    ) -> Self {
        for row in rows {
            self = self.insert(relation, row.as_ref());
        }
        self
    }

    /// Stages the declaration of a relation symbol.  Declaring an existing
    /// relation with the same arity is a no-op; a conflicting arity fails the
    /// commit.
    pub fn add_relation(mut self, name: &str, arity: usize) -> Self {
        self.ops.push(TxnOp::AddRelation {
            name: name.to_owned(),
            arity,
        });
        self
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` iff nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Discards the transaction.  Equivalent to dropping it — the method
    /// exists so call sites can say what they mean.  The store the
    /// transaction was destined for is untouched (byte-identical: it was
    /// never involved).
    pub fn rollback(self) {}
}

/// The outcome of a successful [`Store::commit`].
///
/// Besides the ingestion counts, a receipt records the **delta window** of
/// the commit: the head's [`Database::revision`] and fact count immediately
/// before the commit and the revision immediately after.  Facts are
/// append-only, so the slice `head.facts()[base_facts..]` of the post-commit
/// head is exactly what this commit inserted — the hook delta-chase
/// maintenance (`PreparedInstance::refresh` in `omq-core`) uses to re-chase
/// only the dirtied Gaifman components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The store's epoch after the commit (snapshots taken from now on carry
    /// this tag).
    pub epoch: u64,
    /// Number of facts that were new to the store.
    pub new_facts: usize,
    /// Number of staged facts that were already present (set semantics:
    /// duplicates are accepted and ignored).
    pub duplicate_facts: usize,
    /// Number of relation symbols the transaction added to the schema.
    pub new_relations: usize,
    /// The head database's revision immediately before this commit applied
    /// (equal to [`CommitReceipt::revision`] for a no-effect commit).
    pub base_revision: u64,
    /// The head database's revision immediately after this commit applied.
    pub revision: u64,
    /// The head's fact count immediately before this commit applied; the
    /// commit's inserted facts are `head.facts()[base_facts..]`.
    pub base_facts: usize,
}

/// An immutable view of a [`Store`] at one epoch.
///
/// Cheap to take and to clone (an `Arc` bump); see the module docs for the
/// copy-on-write contract.  A snapshot derefs to [`Database`] and implements
/// `AsRef<Database>`, so everything that evaluates over a database —
/// `QueryPlan::execute`, `QueryPlan::execute_parallel`, serving requests —
/// accepts a snapshot directly and reuses the shared columnar index and
/// interner instead of recomputing them.
#[derive(Debug, Clone)]
pub struct Snapshot {
    db: Arc<Database>,
    epoch: u64,
}

impl Snapshot {
    /// The epoch this snapshot pins (the store's epoch when the snapshot
    /// was taken).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned database view.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A shared handle to the pinned database, e.g. for ad-hoc consumers
    /// that want to own the `Arc` themselves.
    pub fn shared_database(&self) -> Arc<Database> {
        self.db.clone()
    }

    /// Returns `true` iff `self` and `other` pin the very same database
    /// (same `Arc`), which implies equal epochs of one store.
    pub fn ptr_eq(&self, other: &Snapshot) -> bool {
        Arc::ptr_eq(&self.db, &other.db)
    }
}

impl Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

impl AsRef<Database> for Snapshot {
    fn as_ref(&self) -> &Database {
        &self.db
    }
}

/// A long-lived, mutable fact store with transactional batch ingestion and
/// copy-on-write snapshots.  See the module docs for the model and the
/// isolation invariants.
///
/// A store is single-writer (`commit` takes `&mut self`) and many-reader:
/// snapshots are `Send + Sync` values that outlive both borrows of the store
/// and the store itself.
#[derive(Debug, Clone)]
pub struct Store {
    head: Arc<Database>,
    epoch: u64,
}

impl Store {
    /// Creates an empty store over `schema`.
    pub fn new(schema: Schema) -> Self {
        Store {
            head: Arc::new(Database::new(schema)),
            epoch: 0,
        }
    }

    /// Wraps an existing database as epoch 0 of a store (bulk preload).
    pub fn from_database(db: Database) -> Self {
        Store {
            head: Arc::new(db),
            epoch: 0,
        }
    }

    /// The schema of the current head.
    pub fn schema(&self) -> &Schema {
        self.head.schema()
    }

    /// Number of facts in the current head.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// Returns `true` iff the current head holds no facts.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// The current epoch: the number of state-changing commits applied so
    /// far (plus any schema merges that actually extended the schema).
    /// No-effect commits do not move it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pins the current head: an `Arc` clone plus the epoch tag, no copying.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            db: self.head.clone(),
            epoch: self.epoch,
        }
    }

    /// Extends the store schema with every relation of `other` (idempotent;
    /// errors on arity conflicts without applying anything).  Returns `true`
    /// iff a relation was actually added, in which case the epoch is bumped.
    ///
    /// This is how a serving engine grows the store schema to cover each
    /// registered query's data schema.
    pub fn merge_schema(&mut self, other: &Schema) -> Result<bool> {
        // Validate the whole merge on a staged schema first.
        let mut staged = self.head.schema().clone();
        let before = staged.len();
        staged.merge(other)?;
        if staged.len() == before {
            return Ok(false);
        }
        let db = Arc::make_mut(&mut self.head);
        for (_, rel) in other.iter() {
            db.add_relation(&rel.name, rel.arity)
                .expect("merge was validated on the staged schema");
        }
        self.epoch += 1;
        Ok(true)
    }

    /// Validates and applies a transaction atomically, returning the new
    /// epoch and ingestion counts.
    ///
    /// **Commit-or-rollback**: every operation is validated against a staged
    /// schema (in operation order, so relations declared earlier in the
    /// transaction count) before anything is applied; on the first invalid
    /// operation the error is returned and the store — including its epoch
    /// and every snapshot — is exactly as before.
    ///
    /// **Copy-on-write**: if no snapshot pins the current head, the commit
    /// mutates it in place; otherwise the writer pays for one copy of the
    /// head and the snapshots keep the original.  A **no-effect** commit —
    /// empty, or staging only facts/relations the store already has — never
    /// copies anything and leaves the epoch unchanged (the epoch identifies
    /// the head's state: it moves iff the head does), reporting the
    /// duplicates in the receipt.
    pub fn commit(&mut self, txn: Txn) -> Result<CommitReceipt> {
        // Phase 1: validate. No store state is touched in this phase.
        // Alongside validation, detect whether any operation would change
        // the head at all, so duplicate-only re-deliveries (at-least-once
        // ingestion) skip the copy-on-write entirely.
        let mut staged = self.head.schema().clone();
        let mut effective = false;
        let mut staged_inserts = 0usize;
        for op in &txn.ops {
            match op {
                TxnOp::AddRelation { name, arity } => {
                    staged.add_relation(name, *arity)?;
                    effective |= self.head.schema().relation_id(name).is_none();
                }
                TxnOp::Insert { relation, args } => {
                    let rel = staged.require(relation)?;
                    let arity = staged.arity(rel);
                    if arity != args.len() {
                        return Err(DataError::ArityMismatch {
                            relation: relation.clone(),
                            expected: arity,
                            actual: args.len(),
                        });
                    }
                    staged_inserts += 1;
                    effective = effective || !self.head_contains(relation, args);
                }
            }
        }
        if !effective {
            return Ok(CommitReceipt {
                epoch: self.epoch,
                new_facts: 0,
                duplicate_facts: staged_inserts,
                new_relations: 0,
                base_revision: self.head.revision(),
                revision: self.head.revision(),
                base_facts: self.head.len(),
            });
        }
        // Phase 2: apply. Infallible after validation.  The delta window is
        // captured before `make_mut`: a copy-on-write clone preserves the
        // revision, so the base names the pre-commit state either way.
        let base_revision = self.head.revision();
        let base_facts = self.head.len();
        let db = Arc::make_mut(&mut self.head);
        let mut receipt = CommitReceipt {
            epoch: 0,
            new_facts: 0,
            duplicate_facts: 0,
            new_relations: 0,
            base_revision,
            revision: 0,
            base_facts,
        };
        for op in txn.ops {
            match op {
                TxnOp::AddRelation { name, arity } => {
                    if db.schema().relation_id(&name).is_none() {
                        receipt.new_relations += 1;
                    }
                    db.add_relation(&name, arity)
                        .expect("relation was validated against the staged schema");
                }
                TxnOp::Insert { relation, args } => {
                    let added = db
                        .add_named_fact(&relation, &args)
                        .expect("fact was validated against the staged schema");
                    if added {
                        receipt.new_facts += 1;
                    } else {
                        receipt.duplicate_facts += 1;
                    }
                }
            }
        }
        self.epoch += 1;
        receipt.epoch = self.epoch;
        receipt.revision = self.head.revision();
        Ok(receipt)
    }

    /// Returns `true` iff the head already contains the named fact (read-only:
    /// nothing is interned).  A relation or constant unknown to the head means
    /// the fact is necessarily new.
    fn head_contains(&self, relation: &str, args: &[String]) -> bool {
        let Some(rel) = self.head.schema().relation_id(relation) else {
            return false;
        };
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            match self.head.const_id(arg) {
                Some(c) => values.push(crate::value::Value::Const(c)),
                None => return false,
            }
        }
        self.head
            .contains_fact(&crate::fact::Fact::new(rel, values))
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Store(epoch {}, {} facts, {} relations)",
            self.epoch,
            self.head.len(),
            self.head.schema().len()
        )
    }
}

// Snapshots cross thread boundaries by design; the store itself moves into
// writer tasks.  (The facade crate re-asserts this for the public surface.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Store>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<Txn>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::value::Value;

    fn office_schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Researcher", 1).unwrap();
        s.add_relation("HasOffice", 2).unwrap();
        s
    }

    #[test]
    fn commit_applies_batch_and_bumps_epoch() {
        let mut store = Store::new(office_schema());
        assert_eq!(store.epoch(), 0);
        assert!(store.is_empty());
        let receipt = store
            .commit(
                Txn::new()
                    .insert("Researcher", ["mary"])
                    .insert("Researcher", ["john"])
                    .insert("HasOffice", ["mary", "room1"]),
            )
            .unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.new_facts, 3);
        assert_eq!(receipt.duplicate_facts, 0);
        assert_eq!(store.len(), 3);
        assert_eq!(store.epoch(), 1);
        // Duplicates are counted but not inserted (set semantics), and a
        // duplicate-only commit is a no-effect commit: the head is not even
        // copied (same allocation) and the epoch stands.
        let pinned = store.snapshot();
        let receipt = store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        assert_eq!(receipt.new_facts, 0);
        assert_eq!(receipt.duplicate_facts, 1);
        assert_eq!(receipt.epoch, 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.epoch(), 1);
        assert!(store.snapshot().ptr_eq(&pinned));
        // The empty transaction is equally free.
        let receipt = store.commit(Txn::new()).unwrap();
        assert_eq!(receipt.epoch, 1);
        assert!(store.snapshot().ptr_eq(&pinned));
    }

    #[test]
    fn insert_all_and_add_relation_in_one_txn() {
        let mut store = Store::new(office_schema());
        let receipt = store
            .commit(
                Txn::new()
                    .add_relation("InBuilding", 2)
                    .insert_all("Researcher", [["a"], ["b"], ["c"]])
                    .insert("InBuilding", ["room1", "main1"]),
            )
            .unwrap();
        assert_eq!(receipt.new_relations, 1);
        assert_eq!(receipt.new_facts, 4);
        assert!(store.schema().relation_id("InBuilding").is_some());
    }

    #[test]
    fn invalid_txn_is_rejected_atomically() {
        let mut store = Store::new(office_schema());
        store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        let pinned = store.snapshot();
        // Valid prefix, invalid tail: nothing of the batch may land.
        let err = store
            .commit(
                Txn::new()
                    .insert("Researcher", ["ada"])
                    .insert("Nope", ["x"]),
            )
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownRelation(_)));
        assert_eq!(store.len(), 1);
        assert_eq!(store.epoch(), 1);
        assert!(store.snapshot().ptr_eq(&pinned));
        // Arity mismatches are caught the same way.
        let err = store
            .commit(
                Txn::new()
                    .insert("Researcher", ["ada"])
                    .insert("HasOffice", ["ada"]),
            )
            .unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
        assert_eq!(store.len(), 1);
        // Conflicting re-declaration of an existing relation.
        let err = store
            .commit(Txn::new().add_relation("Researcher", 2))
            .unwrap_err();
        assert!(matches!(err, DataError::ConflictingArity { .. }));
    }

    #[test]
    fn relations_declared_in_a_txn_are_visible_to_later_inserts() {
        let mut store = Store::new(Schema::new());
        // Insert before the declaration: order matters, the commit fails.
        let err = store
            .commit(Txn::new().insert("Flag", ["on"]).add_relation("Flag", 1))
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownRelation(_)));
        assert_eq!(store.epoch(), 0);
        // Declaration first: the same operations commit.
        store
            .commit(Txn::new().add_relation("Flag", 1).insert("Flag", ["on"]))
            .unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn receipts_record_the_delta_window() {
        let mut store = Store::new(office_schema());
        let r1 = store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        assert_eq!(r1.base_facts, 0);
        assert_eq!(r1.base_revision, 0);
        assert_eq!(r1.revision, store.snapshot().revision());
        assert!(r1.revision > r1.base_revision);
        let head = store.snapshot();
        let r2 = store
            .commit(
                Txn::new()
                    .insert("Researcher", ["mary"])
                    .insert("HasOffice", ["mary", "room1"]),
            )
            .unwrap();
        assert_eq!(r2.base_facts, 1);
        assert_eq!(r2.base_revision, head.revision());
        assert_eq!(r2.new_facts, 1);
        // Facts are append-only: the delta slice is exactly the inserts.
        let new_head = store.snapshot();
        assert_eq!(new_head.facts()[r2.base_facts..].len(), r2.new_facts);
        // A no-effect commit reports an empty window at the current state.
        let r3 = store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        assert_eq!(r3.base_revision, r3.revision);
        assert_eq!(r3.base_facts, store.len());
        assert_eq!(r3.revision, new_head.revision());
    }

    #[test]
    fn snapshots_are_immune_to_later_commits() {
        let mut store = Store::new(office_schema());
        store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        let pinned = store.snapshot();
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.len(), 1);
        store
            .commit(
                Txn::new()
                    .insert("Researcher", ["ada"])
                    .insert("HasOffice", ["ada", "lab"]),
            )
            .unwrap();
        // The pinned snapshot still sees epoch 1's single fact; a fresh
        // snapshot sees the new head.
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned.epoch(), 1);
        let fresh = store.snapshot();
        assert_eq!(fresh.len(), 3);
        assert_eq!(fresh.epoch(), 2);
        assert!(!fresh.ptr_eq(&pinned));
        // Snapshots survive the store itself.
        drop(store);
        assert_eq!(pinned.len(), 1);
        assert!(pinned.const_id("mary").is_some());
    }

    #[test]
    fn snapshots_share_the_head_until_a_commit_diverges_it() {
        let mut store = Store::new(office_schema());
        store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        let a = store.snapshot();
        let b = store.snapshot();
        // Same epoch -> the very same Arc (and the same columnar index).
        assert!(a.ptr_eq(&b));
        assert_eq!(a.epoch(), b.epoch());
        // Force the index to be built through one snapshot; the other (same
        // Arc) sees it for free.
        let rel = a.schema().relation_id("Researcher").unwrap();
        assert_eq!(a.facts_of(rel).len(), 1);
        assert_eq!(b.facts_of(rel).len(), 1);
        // After a commit the head diverges; the old snapshots stay shared.
        store
            .commit(Txn::new().insert("Researcher", ["ada"]))
            .unwrap();
        assert!(a.ptr_eq(&b));
        assert!(!store.snapshot().ptr_eq(&a));
    }

    #[test]
    fn rollback_leaves_the_store_untouched() {
        let mut store = Store::new(office_schema());
        store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        let before = store.snapshot();
        let txn = Txn::new()
            .insert("Researcher", ["ada"])
            .add_relation("Extra", 1);
        assert_eq!(txn.len(), 2);
        assert!(!txn.is_empty());
        txn.rollback();
        // Not just equal content: the head is the very same allocation.
        assert!(store.snapshot().ptr_eq(&before));
        assert_eq!(store.epoch(), before.epoch());
    }

    #[test]
    fn merge_schema_is_idempotent_and_conflict_checked() {
        let mut store = Store::new(office_schema());
        let mut wider = office_schema();
        wider.add_relation("InBuilding", 2).unwrap();
        assert!(store.merge_schema(&wider).unwrap());
        let epoch = store.epoch();
        // Merging the same schema again adds nothing and keeps the epoch.
        assert!(!store.merge_schema(&wider).unwrap());
        assert_eq!(store.epoch(), epoch);
        // Conflicts are rejected without partial application.
        let mut conflicting = Schema::new();
        conflicting.add_relation("Fresh", 1).unwrap();
        conflicting.add_relation("Researcher", 3).unwrap();
        let before = store.schema().len();
        assert!(store.merge_schema(&conflicting).is_err());
        assert_eq!(store.schema().len(), before);
        assert!(store.schema().relation_id("Fresh").is_none());
    }

    #[test]
    fn from_database_preloads_epoch_zero() {
        let mut db = Database::new(office_schema());
        db.add_named_fact("Researcher", &["mary"]).unwrap();
        let store = Store::from_database(db);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.len(), 1);
        let snap = store.snapshot();
        let rel = snap.schema().relation_id("Researcher").unwrap();
        let mary = Value::Const(snap.const_id("mary").unwrap());
        assert!(snap.contains_fact(&Fact::new(rel, vec![mary])));
    }

    #[test]
    fn snapshot_plugs_into_as_ref_consumers() {
        fn fact_count(db: impl AsRef<Database>) -> usize {
            db.as_ref().len()
        }
        let mut store = Store::new(office_schema());
        store
            .commit(Txn::new().insert("Researcher", ["mary"]))
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(fact_count(&snap), 1);
        assert_eq!(fact_count(snap.database()), 1);
    }
}
