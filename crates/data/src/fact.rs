//! Facts: relation symbols applied to tuples of values.

use crate::schema::RelId;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A fact `R(c₁, …, cₙ)` over a schema.
///
/// Facts of input databases only mention constants; facts of chased instances
/// may also mention labelled nulls.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fact {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument tuple (length = arity of `rel`).
    pub args: Vec<Value>,
}

impl Fact {
    /// Creates a new fact.
    pub fn new(rel: RelId, args: Vec<Value>) -> Self {
        Fact { rel, args }
    }

    /// Returns `true` iff the fact mentions at least one labelled null.
    pub fn has_null(&self) -> bool {
        self.args.iter().any(|v| v.is_null())
    }

    /// Returns `true` iff the fact mentions only constants.
    pub fn is_ground(&self) -> bool {
        !self.has_null()
    }

    /// Iterates over the distinct values mentioned by this fact, in first
    /// occurrence order.
    pub fn distinct_values(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for &v in &self.args {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ConstId, NullId};

    #[test]
    fn null_detection() {
        let ground = Fact::new(
            RelId(0),
            vec![Value::Const(ConstId(0)), Value::Const(ConstId(1))],
        );
        let nully = Fact::new(
            RelId(0),
            vec![Value::Const(ConstId(0)), Value::Null(NullId(0))],
        );
        assert!(ground.is_ground());
        assert!(!ground.has_null());
        assert!(nully.has_null());
        assert!(!nully.is_ground());
    }

    #[test]
    fn distinct_values_preserves_order() {
        let f = Fact::new(
            RelId(1),
            vec![
                Value::Const(ConstId(3)),
                Value::Const(ConstId(1)),
                Value::Const(ConstId(3)),
            ],
        );
        assert_eq!(
            f.distinct_values(),
            vec![Value::Const(ConstId(3)), Value::Const(ConstId(1))]
        );
    }
}
