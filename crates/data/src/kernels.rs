//! Chunked, auto-vectorizable scan kernels over the SoA column layout.
//!
//! The [`crate::columnar::ColumnarIndex`] stores relation arguments as
//! contiguous `Value` columns and its per-(relation, position) CSR offsets as
//! dense `u32` arrays — a layout that is SIMD-ready but, until this module,
//! was only walked by scalar loops with a branch per row.  The kernels here
//! restructure those loops into fixed-width chunk passes whose inner bodies
//! are branch-free reductions (`acc += (v == needle) as usize`), the shape
//! LLVM's auto-vectorizer turns into packed compares without any
//! target-specific intrinsics (`#![forbid(unsafe_code)]` holds).
//!
//! Invariants the chunking relies on:
//!
//! * **Branch-free inner body.** Each `CHUNK`-sized pass accumulates match
//!   counts arithmetically; data-dependent control flow (early exits, output
//!   pushes) happens only *between* chunks, keyed by the chunk's count.  A
//!   selective scan therefore skips the gather loop for chunks with no match
//!   and degrades gracefully to the scalar gather for dense ones.
//! * **Remainder equivalence.** The trailing `len % CHUNK` rows go through a
//!   scalar epilogue with the same predicate, so kernel results are exactly
//!   those of the plain scalar loop — property-tested below against the
//!   obvious reference implementations.
//! * **`u32` row ids.** Selection kernels emit row indices as `u32`, matching
//!   the columnar index's own id width; callers that need `usize` convert at
//!   the boundary.  Columns longer than `u32::MAX` rows are outside the
//!   supported range of the columnar index itself.
//!
//! Consumers: `Extension::of_atom` (omq-core) refines constant-checked scans
//! with [`select_eq`]/[`retain_matching`], the aggregate counting walk
//! (omq-core `enumerate::count_answers`) folds CSR fan-outs with
//! [`sum_csr_lens`]/[`range_len`], and the chase's applicability scans count
//! join partners with [`count_eq`].

use crate::value::Value;

/// Fixed chunk width of the vectorizable passes.  64 `Value`s (8 bytes each)
/// span eight cache lines — wide enough to keep packed compares busy, small
/// enough that the per-chunk match test stays in registers.
pub const CHUNK: usize = 64;

/// Counts the rows of `col` equal to `needle` — the join-partner counting
/// kernel.  Equivalent to `col.iter().filter(|v| **v == needle).count()`.
#[inline]
pub fn count_eq(col: &[Value], needle: Value) -> usize {
    let mut total = 0usize;
    let mut chunks = col.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        let mut acc = 0usize;
        for &v in chunk {
            acc += usize::from(v == needle);
        }
        total += acc;
    }
    for &v in chunks.remainder() {
        total += usize::from(v == needle);
    }
    total
}

/// Membership test: does any row of `col` equal `needle`?  Chunk-wise
/// vector compare with an early exit between chunks.
#[inline]
pub fn contains(col: &[Value], needle: Value) -> bool {
    let mut chunks = col.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        let mut acc = 0usize;
        for &v in chunk {
            acc += usize::from(v == needle);
        }
        if acc != 0 {
            return true;
        }
    }
    chunks.remainder().contains(&needle)
}

/// Appends to `out` the indices of the rows of `col` equal to `needle`,
/// ascending.  `out` is cleared first, so one scratch vector can be reused
/// across scans without reallocating.  Chunks with no match (detected by the
/// branch-free count pass) skip the gather loop entirely.
#[inline]
pub fn select_eq(col: &[Value], needle: Value, out: &mut Vec<u32>) {
    out.clear();
    let mut base = 0usize;
    let mut chunks = col.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        let mut acc = 0usize;
        for &v in chunk {
            acc += usize::from(v == needle);
        }
        if acc != 0 {
            out.reserve(acc);
            for (i, &v) in chunk.iter().enumerate() {
                if v == needle {
                    out.push((base + i) as u32);
                }
            }
        }
        base += CHUNK;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v == needle {
            out.push((base + i) as u32);
        }
    }
}

/// Refines a row-id list against another column: keeps only the rows whose
/// value in `col` equals `needle`.  The gather through `rows` is inherently
/// scalar; the kernel's job is keeping the surviving ids packed in place so
/// the next refinement pass stays sequential.
#[inline]
pub fn retain_matching(col: &[Value], needle: Value, rows: &mut Vec<u32>) {
    rows.retain(|&r| col[r as usize] == needle);
}

/// Sums the CSR range lengths `offsets[k + 1] - offsets[k]` over `keys` —
/// the fan-out of a candidate list into its children, folded without
/// visiting a single child tuple.  `offsets` must be a monotone CSR offset
/// array and every key must satisfy `k + 1 < offsets.len()`.
#[inline]
pub fn sum_csr_lens(offsets: &[u32], keys: &[u32]) -> u64 {
    let mut total = 0u64;
    let mut chunks = keys.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        let mut acc = 0u64;
        for &k in chunk {
            let k = k as usize;
            acc += u64::from(offsets[k + 1] - offsets[k]);
        }
        total += acc;
    }
    for &k in chunks.remainder() {
        let k = k as usize;
        total += u64::from(offsets[k + 1] - offsets[k]);
    }
    total
}

/// The dense special case of [`sum_csr_lens`]: total fan-out of the
/// contiguous key range `lo..hi`, in constant time (CSR offsets telescope).
#[inline]
pub fn range_len(offsets: &[u32], lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi < offsets.len());
    u64::from(offsets[hi]) - u64::from(offsets[lo])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ConstId, NullId};

    /// A column mixing constants and nulls with repetition, long enough to
    /// exercise full chunks plus a ragged remainder.
    fn column(len: usize) -> Vec<Value> {
        (0..len)
            .map(|i| {
                if i % 7 == 3 {
                    Value::Null(NullId((i % 5) as u32))
                } else {
                    Value::Const(ConstId((i % 11) as u32))
                }
            })
            .collect()
    }

    #[test]
    fn count_and_contains_match_scalar_reference() {
        for len in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let col = column(len);
            for needle in [
                Value::Const(ConstId(2)),
                Value::Null(NullId(1)),
                Value::Const(ConstId(999)),
            ] {
                let reference = col.iter().filter(|&&v| v == needle).count();
                assert_eq!(count_eq(&col, needle), reference, "len {len}");
                assert_eq!(contains(&col, needle), reference > 0, "len {len}");
            }
        }
    }

    #[test]
    fn select_eq_matches_scalar_reference_and_reuses_buffer() {
        let col = column(5 * CHUNK + 9);
        let mut out = Vec::new();
        for needle in [
            Value::Const(ConstId(4)),
            Value::Null(NullId(0)),
            Value::Const(ConstId(999)),
        ] {
            select_eq(&col, needle, &mut out);
            let reference: Vec<u32> = col
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == needle)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, reference);
        }
        // The buffer is cleared per call: a no-match scan leaves it empty.
        select_eq(&col, Value::Const(ConstId(999)), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn retain_matching_refines_in_order() {
        let col = column(2 * CHUNK);
        let needle = Value::Const(ConstId(1));
        let mut rows: Vec<u32> = (0..col.len() as u32).collect();
        retain_matching(&col, needle, &mut rows);
        let mut reference = Vec::new();
        select_eq(&col, needle, &mut reference);
        assert_eq!(rows, reference);
        // Refining against a second predicate keeps the intersection.
        retain_matching(&col, Value::Const(ConstId(999)), &mut rows);
        assert!(rows.is_empty());
    }

    #[test]
    fn csr_sums_telescope() {
        // CSR with fan-outs 2, 0, 3, 1, 4.
        let offsets = [0u32, 2, 2, 5, 6, 10];
        let keys: Vec<u32> = vec![0, 2, 4];
        assert_eq!(sum_csr_lens(&offsets, &keys), 2 + 3 + 4);
        let all: Vec<u32> = (0..5).collect();
        assert_eq!(sum_csr_lens(&offsets, &all), 10);
        assert_eq!(range_len(&offsets, 0, 5), 10);
        assert_eq!(range_len(&offsets, 1, 3), 3);
        assert_eq!(range_len(&offsets, 2, 2), 0);
        // A long key list crosses the chunk boundary.
        let offsets: Vec<u32> = (0..=(3 * CHUNK as u32 + 5)).map(|i| 2 * i).collect();
        let keys: Vec<u32> = (0..(3 * CHUNK as u32 + 4)).collect();
        assert_eq!(sum_csr_lens(&offsets, &keys), 2 * keys.len() as u64);
    }
}
