//! String interner mapping symbol names to dense `u32` identifiers.
//!
//! The RAM model of the paper assumes that constants can be stored in single
//! registers and used as indexes into lookup tables.  Interning all symbol
//! names (constants and relation symbols) into dense integers gives exactly
//! that representation.

use rustc_hash::FxHashMap;

/// A simple append-only string interner.
///
/// Identifiers are dense (`0..len`) and stable for the lifetime of the
/// interner, which makes them suitable as indexes into `Vec`-based side
/// tables.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
    ids: FxHashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its identifier.  Repeated calls with the same
    /// string return the same identifier.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned string.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Returns the string for `id`, if valid.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// The version of this interner snapshot: the monotone count of interned
    /// symbols.  Because the interner is append-only, two snapshots with the
    /// same version resolve every identifier identically — a cheap staleness
    /// tag for the copy-on-write `Arc<Interner>` sharing between databases
    /// (the analogue of `Database::revision` for the constant table).
    pub fn version(&self) -> u64 {
        self.names.len() as u64
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a = interner.intern("mary");
        let b = interner.intern("john");
        let a2 = interner.intern("mary");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // Re-interning does not advance the version; new symbols do.
        assert_eq!(interner.version(), 2);
        assert_eq!(interner.resolve(a), "mary");
        assert_eq!(interner.resolve(b), "john");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn get_without_intern() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("x"), None);
        let id = interner.intern("x");
        assert_eq!(interner.get("x"), Some(id));
        assert!(!interner.is_empty());
    }

    #[test]
    fn ids_are_dense() {
        let mut interner = Interner::new();
        for i in 0..100 {
            let id = interner.intern(&format!("c{i}"));
            assert_eq!(id, i);
        }
        let collected: Vec<_> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_resolve_out_of_range() {
        let interner = Interner::new();
        assert_eq!(interner.try_resolve(3), None);
    }
}
