//! Domain values: constants from `C` and labelled nulls from `N`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an interned constant (an element of the set `C` of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstId(pub u32);

/// Identifier of a labelled null (an element of the set `N` of the paper).
///
/// Nulls are introduced by existential quantifiers during the chase; they never
/// occur in input databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NullId(pub u32);

/// A domain value: either a constant or a labelled null.
///
/// Input databases only contain [`Value::Const`]; instances produced by the
/// chase may additionally contain [`Value::Null`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A constant from `C`.
    Const(ConstId),
    /// A labelled null from `N`.
    Null(NullId),
}

impl Value {
    /// Returns `true` iff this value is a labelled null.
    #[inline]
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns `true` iff this value is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Returns the constant identifier if this value is a constant.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// Returns the null identifier if this value is a null.
    #[inline]
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            Value::Const(_) => None,
        }
    }
}

impl From<ConstId> for Value {
    fn from(c: ConstId) -> Self {
        Value::Const(c)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(ConstId(c)) => write!(f, "c{c}"),
            Value::Null(NullId(n)) => write!(f, "⊥{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let c = Value::Const(ConstId(3));
        let n = Value::Null(NullId(7));
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(c.as_const(), Some(ConstId(3)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_null(), Some(NullId(7)));
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn ordering_separates_consts_and_nulls() {
        // The derived order is only used for canonical sorting; it just has to
        // be a total order.
        let mut values = vec![
            Value::Null(NullId(1)),
            Value::Const(ConstId(2)),
            Value::Const(ConstId(0)),
            Value::Null(NullId(0)),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Const(ConstId(0)),
                Value::Const(ConstId(2)),
                Value::Null(NullId(0)),
                Value::Null(NullId(1)),
            ]
        );
    }

    #[test]
    fn conversions() {
        let v: Value = ConstId(5).into();
        assert_eq!(v, Value::Const(ConstId(5)));
        let v: Value = NullId(9).into();
        assert_eq!(v, Value::Null(NullId(9)));
        assert_eq!(format!("{v}"), "⊥9");
    }
}
