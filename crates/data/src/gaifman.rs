//! The Gaifman graph of a database and connectivity helpers.

use crate::database::Database;
use crate::value::Value;
use rustc_hash::{FxHashMap, FxHashSet};

/// The Gaifman graph of a database: vertices are the active-domain values and
/// there is an edge between two values whenever they co-occur in some fact.
#[derive(Debug, Clone, Default)]
pub struct GaifmanGraph {
    adjacency: FxHashMap<Value, FxHashSet<Value>>,
}

impl GaifmanGraph {
    /// Builds the Gaifman graph of `db`.
    pub fn of_database(db: &Database) -> Self {
        let mut graph = GaifmanGraph::default();
        for v in db.adom() {
            graph.adjacency.entry(*v).or_default();
        }
        for fact in db.facts() {
            let values = fact.distinct_values();
            for (i, &a) in values.iter().enumerate() {
                for &b in &values[i + 1..] {
                    graph.add_edge(a, b);
                }
            }
        }
        graph
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: Value, b: Value) {
        if a == b {
            self.adjacency.entry(a).or_default();
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Adds an isolated vertex.
    pub fn add_vertex(&mut self, v: Value) {
        self.adjacency.entry(v).or_default();
    }

    /// Returns the neighbours of `v`.
    pub fn neighbours(&self, v: Value) -> impl Iterator<Item = Value> + '_ {
        self.adjacency
            .get(&v)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Returns `true` iff `a` and `b` are adjacent.
    pub fn adjacent(&self, a: Value, b: Value) -> bool {
        self.adjacency
            .get(&a)
            .map(|s| s.contains(&b))
            .unwrap_or(false)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(FxHashSet::len).sum::<usize>() / 2
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Value> + '_ {
        self.adjacency.keys().copied()
    }

    /// Computes the connected components, each returned as a sorted vector.
    pub fn connected_components(&self) -> Vec<Vec<Value>> {
        let mut seen: FxHashSet<Value> = FxHashSet::default();
        let mut components = Vec::new();
        let mut vertices: Vec<Value> = self.adjacency.keys().copied().collect();
        vertices.sort();
        for start in vertices {
            if seen.contains(&start) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen.insert(start);
            while let Some(v) = stack.pop() {
                component.push(v);
                for n in self.neighbours(v) {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
            component.sort();
            components.push(component);
        }
        components
    }

    /// Returns `true` iff the graph is connected (or empty).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Returns `true` iff the graph contains a triangle (3-clique).  Used by
    /// the lower-bound experiments; runs in `O(Σ_v deg(v)²)`.
    pub fn contains_triangle(&self) -> bool {
        for (&v, neighbours) in &self.adjacency {
            let ns: Vec<Value> = neighbours.iter().copied().collect();
            for (i, &a) in ns.iter().enumerate() {
                if a == v {
                    continue;
                }
                for &b in &ns[i + 1..] {
                    if b != v && self.adjacent(a, b) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ConstId;

    fn v(i: u32) -> Value {
        Value::Const(ConstId(i))
    }

    fn path_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        Database::builder(schema)
            .fact("R", ["a", "b"])
            .fact("R", ["b", "c"])
            .fact("R", ["d", "e"])
            .build()
            .unwrap()
    }

    #[test]
    fn gaifman_of_database() {
        let db = path_db();
        let g = GaifmanGraph::of_database(&db);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 3);
        let a = Value::Const(db.const_id("a").unwrap());
        let b = Value::Const(db.const_id("b").unwrap());
        let c = Value::Const(db.const_id("c").unwrap());
        assert!(g.adjacent(a, b));
        assert!(g.adjacent(b, c));
        assert!(!g.adjacent(a, c));
        assert!(!g.is_connected());
        assert_eq!(g.connected_components().len(), 2);
    }

    #[test]
    fn triangle_detection() {
        let mut g = GaifmanGraph::default();
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        assert!(!g.contains_triangle());
        g.add_edge(v(2), v(0));
        assert!(g.contains_triangle());
    }

    #[test]
    fn self_loops_do_not_create_edges() {
        let mut g = GaifmanGraph::default();
        g.add_edge(v(0), v(0));
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn isolated_vertices_count_as_components() {
        let mut g = GaifmanGraph::default();
        g.add_vertex(v(0));
        g.add_vertex(v(1));
        g.add_edge(v(2), v(3));
        assert_eq!(g.connected_components().len(), 3);
    }
}
