//! The unified answer value and semantics selector shared by every
//! enumeration surface of the workspace.
//!
//! The paper studies three answer semantics over the query-directed chase:
//! complete (certain) answers, minimal partial answers with a single
//! wildcard `*`, and minimal partial answers with multi-wildcards
//! `*1, *2, …`.  Downstream crates expose one cursor API over all three —
//! `PreparedInstance::answers(Semantics)` in `omq-core` — so the semantics
//! selector ([`Semantics`]) and the typed answer value ([`Answer`]) live
//! here, next to the tuple types they wrap.

use crate::value::ConstId;
use crate::wildcard::{MultiTuple, PartialTuple};
use std::fmt;

/// Which answer semantics an enumeration produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Semantics {
    /// Complete (certain) answers — constant tuples only (Theorem 4.1(1)).
    Complete,
    /// Minimal partial answers with a single wildcard `*` (Theorem 5.2).
    MinimalPartial,
    /// Minimal partial answers with multi-wildcards `*1, *2, …`
    /// (Theorem 6.1).
    MinimalPartialMulti,
}

impl Semantics {
    /// All three semantics, in increasing generality.
    pub const ALL: [Semantics; 3] = [
        Semantics::Complete,
        Semantics::MinimalPartial,
        Semantics::MinimalPartialMulti,
    ];
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Semantics::Complete => "complete",
            Semantics::MinimalPartial => "minimal-partial",
            Semantics::MinimalPartialMulti => "minimal-partial-multi",
        };
        f.write_str(name)
    }
}

/// One answer, typed by the semantics that produced it.
///
/// An answer stream of a fixed [`Semantics`] only ever yields the matching
/// variant, so pattern matches in consumers may treat the other two as
/// unreachable after checking the stream's semantics once.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Answer {
    /// A complete (certain) answer: a tuple of constants.
    Complete(Vec<ConstId>),
    /// A minimal partial answer with the single wildcard `*`.
    Partial(PartialTuple),
    /// A minimal partial answer with multi-wildcards `*1, *2, …`.
    Multi(MultiTuple),
}

impl Answer {
    /// The semantics this answer belongs to.
    pub fn semantics(&self) -> Semantics {
        match self {
            Answer::Complete(_) => Semantics::Complete,
            Answer::Partial(_) => Semantics::MinimalPartial,
            Answer::Multi(_) => Semantics::MinimalPartialMulti,
        }
    }

    /// Arity of the answer tuple.
    pub fn len(&self) -> usize {
        match self {
            Answer::Complete(t) => t.len(),
            Answer::Partial(t) => t.len(),
            Answer::Multi(t) => t.len(),
        }
    }

    /// Returns `true` iff the answer is the empty (Boolean) tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` iff the answer carries no wildcard — complete answers
    /// always, partial/multi answers when every position is a constant.
    pub fn is_complete(&self) -> bool {
        match self {
            Answer::Complete(_) => true,
            Answer::Partial(t) => t.is_complete(),
            Answer::Multi(t) => t.is_complete(),
        }
    }

    /// The complete tuple, if this is a [`Answer::Complete`] answer.
    pub fn as_complete(&self) -> Option<&[ConstId]> {
        match self {
            Answer::Complete(t) => Some(t),
            _ => None,
        }
    }

    /// The partial tuple, if this is a [`Answer::Partial`] answer.
    pub fn as_partial(&self) -> Option<&PartialTuple> {
        match self {
            Answer::Partial(t) => Some(t),
            _ => None,
        }
    }

    /// The multi-wildcard tuple, if this is a [`Answer::Multi`] answer.
    pub fn as_multi(&self) -> Option<&MultiTuple> {
        match self {
            Answer::Multi(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the answer into its complete tuple, if it is one.
    pub fn into_complete(self) -> Option<Vec<ConstId>> {
        match self {
            Answer::Complete(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the answer into its partial tuple, if it is one.
    pub fn into_partial(self) -> Option<PartialTuple> {
        match self {
            Answer::Partial(t) => Some(t),
            _ => None,
        }
    }

    /// Consumes the answer into its multi-wildcard tuple, if it is one.
    pub fn into_multi(self) -> Option<MultiTuple> {
        match self {
            Answer::Multi(t) => Some(t),
            _ => None,
        }
    }

    /// Renders the answer with constant names supplied by `resolve`.
    pub fn display_with(&self, mut resolve: impl FnMut(ConstId) -> String) -> String {
        match self {
            Answer::Complete(t) => {
                let names: Vec<String> = t.iter().map(|&c| resolve(c)).collect();
                format!("({})", names.join(","))
            }
            Answer::Partial(t) => t.display_with(resolve),
            Answer::Multi(t) => t.display_with(resolve),
        }
    }
}

impl From<PartialTuple> for Answer {
    fn from(t: PartialTuple) -> Self {
        Answer::Partial(t)
    }
}

impl From<MultiTuple> for Answer {
    fn from(t: MultiTuple) -> Self {
        Answer::Multi(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wildcard::{MultiValue, PartialValue};

    #[test]
    fn semantics_roundtrip_and_display() {
        assert_eq!(Semantics::ALL.len(), 3);
        assert_eq!(Semantics::Complete.to_string(), "complete");
        assert_eq!(
            Semantics::MinimalPartialMulti.to_string(),
            "minimal-partial-multi"
        );
    }

    #[test]
    fn answer_accessors_are_variant_exact() {
        let complete = Answer::Complete(vec![ConstId(0), ConstId(1)]);
        let partial = Answer::Partial(PartialTuple(vec![
            PartialValue::Const(ConstId(0)),
            PartialValue::Star,
        ]));
        let multi = Answer::Multi(MultiTuple(vec![MultiValue::Wild(1), MultiValue::Wild(1)]));
        assert_eq!(complete.semantics(), Semantics::Complete);
        assert_eq!(partial.semantics(), Semantics::MinimalPartial);
        assert_eq!(multi.semantics(), Semantics::MinimalPartialMulti);
        assert!(complete.is_complete());
        assert!(!partial.is_complete());
        assert!(!multi.is_complete());
        assert_eq!(complete.as_complete().map(<[_]>::len), Some(2));
        assert!(complete.as_partial().is_none());
        assert_eq!(partial.as_partial().map(PartialTuple::len), Some(2));
        assert!(partial.as_multi().is_none());
        assert_eq!(multi.as_multi().map(MultiTuple::len), Some(2));
        assert!(multi.as_complete().is_none());
        assert_eq!(
            partial.clone().into_partial(),
            partial.as_partial().cloned()
        );
        assert!(multi.clone().into_complete().is_none());
        assert_eq!(complete.len(), 2);
        assert!(!complete.is_empty());
        assert!(Answer::Complete(Vec::new()).is_empty());
    }

    #[test]
    fn display_renders_wildcards() {
        let partial = Answer::Partial(PartialTuple(vec![
            PartialValue::Const(ConstId(7)),
            PartialValue::Star,
        ]));
        assert_eq!(partial.display_with(|_| "c".to_owned()), "(c,*)");
        let complete = Answer::Complete(vec![ConstId(7)]);
        assert_eq!(complete.display_with(|_| "c".to_owned()), "(c)");
    }
}
